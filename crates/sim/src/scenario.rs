//! Canned experiment scenarios.
//!
//! Each scenario reproduces a configuration from the paper's evaluation
//! (or a DESIGN.md ablation) so figures, tests and examples agree on
//! parameters. Builders return a [`SimConfigBuilder`] so callers can
//! still override the seed or individual knobs.

use crate::config::{Algorithm, BandwidthSpec, LearnerSpec, SimConfig, SimConfigBuilder};
use rths_stoch::process::ChurnProcess;

/// Factory for the workspace's standard experiment configurations.
#[derive(Debug, Clone, Copy)]
pub struct Scenario;

impl Scenario {
    /// Fig. 2/3/4 configuration: `N = 10` peers, `|H| = 4` helpers on the
    /// paper's `[700, 800, 900]` slowly changing chain, uncapped demand.
    pub fn paper_small() -> SimConfigBuilder {
        SimConfig::builder(10, vec![BandwidthSpec::Paper { stay: 0.98 }; 4])
    }

    /// Fig. 1 configuration: the "large-scale" run. The paper does not
    /// give exact sizes; DESIGN.md fixes `N = 200`, `|H| = 20`.
    pub fn paper_large() -> SimConfigBuilder {
        SimConfig::builder(200, vec![BandwidthSpec::Paper { stay: 0.98 }; 20])
    }

    /// Fig. 5 configuration: `paper_small` plus a 400 kbps per-peer
    /// demand, so total demand (4000) exceeds helper capacity (≤3600) and
    /// the server carries the deficit.
    pub fn paper_server_load() -> SimConfigBuilder {
        Self::paper_small().demand(400.0)
    }

    /// Tracking-vs-matching ablation: 60 peers, 6 helpers, where half the
    /// helpers collapse from 900 to 100 kbps at `shift_epoch`. The
    /// discriminating metric is how quickly peers evacuate the degraded
    /// helpers: recency-weighted tracking reconverges within a few
    /// hundred epochs while uniform-averaging matching stays anchored to
    /// stale estimates for thousands.
    pub fn regime_shift(shift_epoch: u64) -> SimConfigBuilder {
        let mut helpers = Vec::new();
        for j in 0..6 {
            if j % 2 == 0 {
                helpers.push(BandwidthSpec::RegimeShift {
                    before: 900.0,
                    after: 100.0,
                    at: shift_epoch,
                });
            } else {
                helpers.push(BandwidthSpec::Constant(600.0));
            }
        }
        SimConfig::builder(60, helpers)
    }

    /// Same scenario with the regret-matching baseline, for the ablation.
    pub fn regime_shift_matching(shift_epoch: u64) -> SimConfigBuilder {
        Self::regime_shift(shift_epoch).learner(LearnerSpec {
            algorithm: Algorithm::RegretMatching,
            ..LearnerSpec::default()
        })
    }

    /// Churn ablation: 100 peers with Poisson(2) arrivals and 2% per-epoch
    /// departures (equilibrium population 100), 10 helpers.
    pub fn churn() -> SimConfigBuilder {
        SimConfig::builder(100, vec![BandwidthSpec::Paper { stay: 0.98 }; 10])
            .churn(ChurnProcess::new(2.0, 0.02))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_small_shape() {
        let c = Scenario::paper_small().build();
        assert_eq!(c.num_peers, 10);
        assert_eq!(c.helpers.len(), 4);
        assert_eq!(c.demand, None);
    }

    #[test]
    fn paper_large_shape() {
        let c = Scenario::paper_large().build();
        assert_eq!(c.num_peers, 200);
        assert_eq!(c.helpers.len(), 20);
    }

    #[test]
    fn server_load_scenario_has_demand() {
        let c = Scenario::paper_server_load().build();
        assert_eq!(c.demand, Some(400.0));
    }

    #[test]
    fn regime_shift_mixes_process_kinds() {
        let c = Scenario::regime_shift(500).build();
        let shifts =
            c.helpers.iter().filter(|h| matches!(h, BandwidthSpec::RegimeShift { .. })).count();
        assert_eq!(shifts, 3);
        assert_eq!(c.helpers.len(), 6);
    }

    #[test]
    fn matching_variant_switches_algorithm() {
        let c = Scenario::regime_shift_matching(500).build();
        assert_eq!(c.learner.algorithm, Algorithm::RegretMatching);
    }

    #[test]
    fn churn_scenario_has_positive_rates() {
        let c = Scenario::churn().build();
        assert!(c.churn.arrival_rate() > 0.0);
        assert!(c.churn.departure_prob() > 0.0);
        assert_eq!(c.churn.equilibrium_population(), Some(100.0));
    }

    #[test]
    fn builders_allow_overrides() {
        let c = Scenario::paper_small().seed(99).demand(350.0).build();
        assert_eq!(c.seed, 99);
        assert_eq!(c.demand, Some(350.0));
    }
}
