//! Discrete-time simulator of a helper-assisted P2P live-streaming system.
//!
//! This crate is the evaluation substrate for the RTHS reproduction: it
//! models the full system of paper §IV — streaming **server**, **helpers**
//! with Markov-modulated upload bandwidth, **peers** running decentralized
//! learners with only local information, per-peer streaming **demand**,
//! peer **churn**, and (as the paper's future-work extension) multiple
//! **channels** with per-helper bandwidth allocation.
//!
//! Per epoch the engine:
//!
//! 1. advances every helper's bandwidth process (the paper's slowly
//!    changing `[700, 800, 900]` chain by default);
//! 2. applies churn (Poisson joins, geometric departures);
//! 3. lets every peer select a helper by sampling its learner's mixed
//!    strategy — peers never see other peers' actions or payoffs;
//! 4. splits each helper's capacity evenly over its connected peers and
//!    delivers `min(demand, share)` to each;
//! 5. feeds realized rates back to the learners (bandit feedback);
//! 6. routes every peer's residual demand to the streaming server
//!    (`server load = Σ_i max(0, d_i − r_i)`, Fig. 5);
//! 7. records metrics (regret, welfare, loads, fairness, server load,
//!    helper-switch counts).
//!
//! # Example
//!
//! ```
//! use rths_sim::{Scenario, System};
//!
//! // The paper's small-scale configuration: 10 peers, 4 helpers.
//! let config = Scenario::paper_small().seed(42).build();
//! let mut system = System::new(config);
//! let outcome = system.run(500);
//! assert_eq!(outcome.epochs, 500);
//! // All 10 peers were served every epoch.
//! assert_eq!(outcome.metrics.mean_peer_rates.len(), 10);
//! ```

#![forbid(unsafe_code)]

pub mod channel;
pub mod churn;
pub mod config;
pub mod helper;
pub mod impairment;
pub mod metrics;
pub mod minitoml;
pub mod multichannel;
pub mod peer;
pub mod playback;
pub mod regret;
pub mod scenario;
pub mod server;
pub mod spec;
pub mod store;
pub mod system;
pub mod workload;

pub use config::{
    Algorithm, AnyLearner, BandwidthSpec, LearnerSpec, SimConfig, SimConfigBuilder,
};
pub use impairment::{ImpairmentError, ImpairmentPlan, LinkShaper, LossModel};
pub use metrics::SimMetrics;
pub use multichannel::{
    AllocationPolicy, MultiChannelConfig, MultiChannelOutcome, MultiChannelSystem,
};
pub use playback::{PlaybackBuffer, PlaybackStats};
pub use scenario::Scenario;
pub use spec::{ScenarioError, ScenarioReport, ScenarioSpec};
pub use store::{LearnerCell, LearnerRef, PeerStore};
pub use system::{Outcome, System};
pub use workload::WorkloadPhase;
