//! Declarative scenario specifications: one versioned, validated,
//! TOML-loadable description of an entire experiment.
//!
//! A [`ScenarioSpec`] composes the four axes that were previously spread
//! over [`crate::Scenario`] factory methods, free-function workloads,
//! `FaultPlan`, and ad-hoc bench configs:
//!
//! 1. **Population** — either a single-channel swarm (peer count, helper
//!    bandwidth groups, demand, churn, learner) or a multi-channel
//!    deployment (channels, bitrate, viewers, Zipf popularity,
//!    allocation policy);
//! 2. **Impairment** — an [`ImpairmentPlan`] (bursty loss, token-bucket
//!    shaping, link bandwidth caps, jitter/latency);
//! 3. **Workload phases** — an ordered list of [`WorkloadPhase`]s
//!    (steady, flash crowd, diurnal, helper failure, popularity shift,
//!    channel surfing);
//! 4. **Determinism** — a single root seed; running the same spec twice
//!    yields bit-identical trajectories.
//!
//! Specs are constructed either programmatically
//! ([`ScenarioSpec::builder`]) or from TOML ([`ScenarioSpec::from_toml_str`],
//! [`ScenarioSpec::load`]); both paths run the same validation and
//! surface [`ScenarioError`]s instead of panicking. Serialization
//! ([`ScenarioSpec::to_toml_string`]) round-trips exactly:
//! `from_toml_str(to_toml_string(s)) == s`.
//!
//! ```
//! use rths_sim::ScenarioSpec;
//!
//! let spec = ScenarioSpec::from_toml_str(r#"
//!     version = 1
//!     name = "smoke"
//!     seed = 7
//!
//!     [population]
//!     peers = 10
//!     demand = 380.0
//!
//!     [[population.helpers]]
//!     count = 4
//!     kind = "paper"
//!     stay = 0.98
//!
//!     [[phase]]
//!     kind = "steady"
//!     epochs = 50
//! "#).unwrap();
//! let report = spec.run();
//! assert_eq!(report.epochs, 50);
//! ```
//!
//! The on-disk catalog lives in `scenarios/*.toml` at the repository
//! root (the "scenario zoo"); `cargo run --release -p rths_bench --bin
//! run_scenario -- <file>` executes one and writes welfare/regret CSVs.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use rths_obs as obs;
use rths_stoch::process::ChurnProcess;
use rths_stoch::rng::{derive_seed, seeded_rng};

use crate::config::{Algorithm, BandwidthSpec, LearnerSpec, SimConfig};
use crate::impairment::{ImpairmentError, ImpairmentPlan, LossModel};
use crate::minitoml::{self, TomlError, Value};
use crate::multichannel::{AllocationPolicy, MultiChannelConfig, MultiChannelSystem};
use crate::system::System;
use crate::workload::WorkloadPhase;

/// The scenario format version this build reads and writes.
pub const SCENARIO_SPEC_VERSION: i64 = 1;

/// Stream id deriving the channel-surf RNG from the root seed.
const SURF_STREAM: u64 = 0x5355_5246; // "SURF"

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a scenario failed to load or validate.
#[derive(Debug)]
pub enum ScenarioError {
    /// The TOML text failed to parse.
    Toml(TomlError),
    /// The `[impairment]` section had an out-of-range field.
    Impairment(ImpairmentError),
    /// A scenario field was missing, mistyped, or out of range.
    Invalid {
        /// Dotted path of the offending field (e.g. `population.peers`).
        path: String,
        /// What the field requires.
        message: String,
    },
    /// The scenario file could not be read.
    Io(std::io::Error),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Toml(e) => write!(f, "scenario TOML: {e}"),
            ScenarioError::Impairment(e) => write!(f, "scenario impairment: {e}"),
            ScenarioError::Invalid { path, message } => {
                write!(f, "scenario field `{path}`: {message}")
            }
            ScenarioError::Io(e) => write!(f, "scenario file: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<TomlError> for ScenarioError {
    fn from(e: TomlError) -> Self {
        ScenarioError::Toml(e)
    }
}

impl From<ImpairmentError> for ScenarioError {
    fn from(e: ImpairmentError) -> Self {
        ScenarioError::Impairment(e)
    }
}

fn invalid(path: impl Into<String>, message: impl Into<String>) -> ScenarioError {
    ScenarioError::Invalid { path: path.into(), message: message.into() }
}

// ---------------------------------------------------------------------------
// Spec data model
// ---------------------------------------------------------------------------

/// Peer churn as an arrival/departure pair (a declarative
/// [`ChurnProcess`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// Expected Poisson arrivals per epoch.
    pub arrival: f64,
    /// Per-peer departure probability per epoch.
    pub departure: f64,
}

/// A group of identical helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct HelperGroup {
    /// How many helpers share this bandwidth process.
    pub count: usize,
    /// The bandwidth process each runs.
    pub bandwidth: BandwidthSpec,
}

/// A single-channel population (the paper's §IV system).
#[derive(Debug, Clone, PartialEq)]
pub struct SingleSpec {
    /// Initial peer count.
    pub peers: usize,
    /// Helper groups, flattened in order into the helper list.
    pub helpers: Vec<HelperGroup>,
    /// Per-peer streaming demand (kbps); `None` = unbounded.
    pub demand: Option<f64>,
    /// Churn; `None` = a fixed population.
    pub churn: Option<ChurnSpec>,
    /// Learner configuration for every peer.
    pub learner: LearnerSpec,
}

/// A multi-channel deployment (the paper's future-work extension),
/// mapping onto [`MultiChannelConfig::standard`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSpec {
    /// Number of channels.
    pub channels: usize,
    /// Per-channel bitrate (kbps).
    pub bitrate: f64,
    /// Helper count.
    pub helpers: usize,
    /// Channels served per helper (staggered assignment).
    pub channels_per_helper: usize,
    /// Total viewers, split over channels by Zipf popularity.
    pub viewers: usize,
    /// Zipf popularity exponent.
    pub zipf_s: f64,
    /// How helpers split capacity across their channels.
    pub allocation: AllocationPolicy,
}

/// Which engine a scenario drives.
#[derive(Debug, Clone, PartialEq)]
pub enum PopulationSpec {
    /// One channel, [`System`].
    Single(SingleSpec),
    /// Many channels, [`MultiChannelSystem`].
    Multi(MultiSpec),
}

/// A complete, validated scenario description. See the [module
/// docs](self) for the TOML schema and construction paths.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    version: i64,
    name: String,
    description: String,
    seed: u64,
    population: PopulationSpec,
    impairment: ImpairmentPlan,
    phases: Vec<WorkloadPhase>,
    /// Enable `rths_obs` tracing for the duration of [`Self::run`]
    /// (bit-exact neutral — see the `rths_obs` determinism contract).
    trace: bool,
}

impl ScenarioSpec {
    /// Starts a programmatic spec with the given name.
    pub fn builder(name: impl Into<String>) -> ScenarioSpecBuilder {
        ScenarioSpecBuilder {
            name: name.into(),
            description: String::new(),
            seed: 0,
            population: None,
            impairment: ImpairmentPlan::none(),
            phases: Vec::new(),
            trace: false,
        }
    }

    /// Scenario name (also the CSV file-name stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Free-form description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Format version (always [`SCENARIO_SPEC_VERSION`] once validated).
    pub fn version(&self) -> i64 {
        self.version
    }

    /// The population / engine choice.
    pub fn population(&self) -> &PopulationSpec {
        &self.population
    }

    /// The link-impairment plan.
    pub fn impairment(&self) -> &ImpairmentPlan {
        &self.impairment
    }

    /// The ordered workload phases.
    pub fn phases(&self) -> &[WorkloadPhase] {
        &self.phases
    }

    /// Whether [`Self::run`] enables `rths_obs` tracing (the TOML
    /// `trace` key). Tracing is bit-exact neutral: the run's
    /// trajectories are `to_bits`-identical either way.
    pub fn trace(&self) -> bool {
        self.trace
    }

    /// Total epochs over all phases.
    pub fn total_epochs(&self) -> u64 {
        self.phases.iter().map(WorkloadPhase::epochs).sum()
    }

    /// Caps the total epoch budget at `cap` (min 1) by truncating the
    /// phase list — CI smoke runs use this to execute every scenario's
    /// early phases in seconds. Phase-relative event epochs are clamped
    /// into the shortened phase.
    #[must_use]
    pub fn with_epoch_cap(mut self, cap: u64) -> Self {
        let cap = cap.max(1);
        let mut used = 0u64;
        let mut phases = Vec::new();
        for phase in self.phases {
            if used >= cap {
                break;
            }
            let budget = (cap - used).min(phase.epochs());
            used += budget;
            phases.push(clamp_phase(phase, budget));
        }
        self.phases = phases;
        self
    }

    // -- TOML -----------------------------------------------------------

    /// Parses and validates a spec from TOML text.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] describing the first malformed line,
    /// missing key, unknown key, or out-of-range field.
    pub fn from_toml_str(text: &str) -> Result<Self, ScenarioError> {
        let root = minitoml::parse(text)?;
        let spec = parse_spec(&root)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Reads and parses a spec from a file.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] if the file is unreadable, else as
    /// [`Self::from_toml_str`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(ScenarioError::Io)?;
        Self::from_toml_str(&text)
    }

    /// Serializes the spec to TOML. Round-trips exactly:
    /// `from_toml_str(to_toml_string(s))` reproduces `s` bit-for-bit
    /// (floats use shortest-round-trip formatting).
    pub fn to_toml_string(&self) -> String {
        minitoml::serialize(&self.value_tree())
    }

    // -- Execution ------------------------------------------------------

    /// Runs the scenario to completion and reports per-epoch series.
    ///
    /// When the spec's `trace` flag (or an ambient `RTHS_TRACE` /
    /// [`rths_obs::set_enabled`] state) enables tracing, the global
    /// `rths_obs` registry is reset and named after the scenario;
    /// collect the spans/counters with [`rths_obs::take_report`] after
    /// this returns. Tracing never changes the trajectories — the
    /// `obs_neutrality` suite pins `to_bits` equality.
    pub fn run(&self) -> ScenarioReport {
        let _trace_guard = self.trace.then(|| obs::scoped_enable(true));
        if obs::enabled() {
            obs::begin_run(&self.name);
        }
        match &self.population {
            PopulationSpec::Single(single) => {
                let mut system = System::new(self.sim_config(single));
                for phase in &self.phases {
                    phase.run_single(&mut system);
                }
                let out = system.outcome();
                ScenarioReport {
                    name: self.name.clone(),
                    epochs: out.epochs,
                    welfare: out.metrics.welfare.values().to_vec(),
                    server_load: out.metrics.server_load.values().to_vec(),
                    worst_empirical_regret: out
                        .metrics
                        .worst_empirical_regret
                        .values()
                        .to_vec(),
                    worst_regret_estimate: out.metrics.worst_regret_estimate.values().to_vec(),
                    population: out.metrics.population.values().to_vec(),
                    final_population: out.final_population,
                }
            }
            PopulationSpec::Multi(multi) => {
                let config = MultiChannelConfig::standard(
                    multi.channels,
                    multi.bitrate,
                    multi.helpers,
                    multi.channels_per_helper,
                    multi.viewers,
                    multi.zipf_s,
                    multi.allocation,
                    self.seed,
                );
                let mut system = MultiChannelSystem::new(config);
                let mut surf_rng = seeded_rng(derive_seed(self.seed, SURF_STREAM));
                for phase in &self.phases {
                    phase.run_multi(&mut system, multi.channels, multi.zipf_s, &mut surf_rng);
                }
                let out = system.outcome();
                ScenarioReport {
                    name: self.name.clone(),
                    epochs: out.epochs,
                    welfare: out.welfare.values().to_vec(),
                    server_load: out.server_load.values().to_vec(),
                    worst_empirical_regret: out.worst_empirical_regret.values().to_vec(),
                    worst_regret_estimate: Vec::new(),
                    population: Vec::new(),
                    final_population: multi.viewers,
                }
            }
        }
    }

    /// The [`SimConfig`] a single-channel scenario runs under.
    fn sim_config(&self, single: &SingleSpec) -> SimConfig {
        let helpers: Vec<BandwidthSpec> = single
            .helpers
            .iter()
            .flat_map(|g| std::iter::repeat_n(g.bandwidth.clone(), g.count))
            .collect();
        let mut builder = SimConfig::builder(single.peers, helpers)
            .seed(self.seed)
            .learner(single.learner.clone())
            .impairment(self.impairment.clone());
        if let Some(demand) = single.demand {
            builder = builder.demand(demand);
        }
        if let Some(churn) = single.churn {
            builder = builder.churn(ChurnProcess::new(churn.arrival, churn.departure));
        }
        builder.build()
    }

    // -- Validation -----------------------------------------------------

    fn validate(&self) -> Result<(), ScenarioError> {
        if self.version != SCENARIO_SPEC_VERSION {
            return Err(invalid(
                "version",
                format!(
                    "unsupported version {} (this build reads {SCENARIO_SPEC_VERSION})",
                    self.version
                ),
            ));
        }
        if self.name.is_empty()
            || !self
                .name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
        {
            return Err(invalid(
                "name",
                "must be non-empty [a-z0-9_-] (it names output files)",
            ));
        }
        if self.seed > i64::MAX as u64 {
            return Err(invalid("seed", "must fit a TOML integer (≤ 2^63 − 1)"));
        }
        if self.phases.is_empty() {
            return Err(invalid("phase", "at least one [[phase]] is required"));
        }
        match &self.population {
            PopulationSpec::Single(s) => validate_single(s)?,
            PopulationSpec::Multi(m) => {
                validate_multi(m)?;
                if !self.impairment.is_none() {
                    return Err(invalid(
                        "impairment",
                        "impairments are only wired into single-channel populations",
                    ));
                }
            }
        }
        validate_impairment_serializable(&self.impairment)?;
        for (i, phase) in self.phases.iter().enumerate() {
            validate_phase(phase, i, &self.population)?;
        }
        Ok(())
    }

    // -- Serialization tree ---------------------------------------------

    fn value_tree(&self) -> BTreeMap<String, Value> {
        let mut root = BTreeMap::new();
        root.insert("version".into(), Value::Int(self.version));
        root.insert("name".into(), Value::Str(self.name.clone()));
        if !self.description.is_empty() {
            root.insert("description".into(), Value::Str(self.description.clone()));
        }
        root.insert("seed".into(), Value::Int(self.seed as i64));
        match &self.population {
            PopulationSpec::Single(s) => {
                root.insert("population".into(), Value::Table(single_tree(s)));
            }
            PopulationSpec::Multi(m) => {
                root.insert("multichannel".into(), Value::Table(multi_tree(m)));
            }
        }
        // Compared against the default plan, not `is_none()`: an inert
        // plan with a non-zero seed must keep that seed through a round
        // trip even though it decides nothing.
        if self.impairment != ImpairmentPlan::none() {
            root.insert("impairment".into(), Value::Table(impairment_tree(&self.impairment)));
        }
        if self.trace {
            root.insert("trace".into(), Value::Bool(true));
        }
        let phases: Vec<Value> =
            self.phases.iter().map(|p| Value::Table(phase_tree(p))).collect();
        root.insert("phase".into(), Value::Array(phases));
        root
    }
}

/// Per-epoch series a scenario run produces — the CSV payload of the
/// `run_scenario` bin.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (CSV file-name stem).
    pub name: String,
    /// Epochs executed.
    pub epochs: u64,
    /// Total delivered rate per epoch.
    pub welfare: Vec<f64>,
    /// Server load per epoch.
    pub server_load: Vec<f64>,
    /// Worst empirical (true time-averaged) regret per epoch.
    pub worst_empirical_regret: Vec<f64>,
    /// Worst internal regret estimate per epoch (empty for
    /// multi-channel runs, which don't track the estimator).
    pub worst_regret_estimate: Vec<f64>,
    /// Online population per epoch (empty for multi-channel runs).
    pub population: Vec<f64>,
    /// Peers/viewers at the end.
    pub final_population: usize,
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Programmatic [`ScenarioSpec`] construction; finish with
/// [`build`](ScenarioSpecBuilder::build).
#[derive(Debug, Clone)]
pub struct ScenarioSpecBuilder {
    name: String,
    description: String,
    seed: u64,
    population: Option<PopulationSpec>,
    impairment: ImpairmentPlan,
    phases: Vec<WorkloadPhase>,
    trace: bool,
}

impl ScenarioSpecBuilder {
    /// Sets the free-form description.
    #[must_use]
    pub fn description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Sets the root seed (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Declares a single-channel population of `peers` peers and the
    /// given `(count, bandwidth)` helper groups.
    #[must_use]
    pub fn single(mut self, peers: usize, helpers: Vec<(usize, BandwidthSpec)>) -> Self {
        self.population = Some(PopulationSpec::Single(SingleSpec {
            peers,
            helpers: helpers
                .into_iter()
                .map(|(count, bandwidth)| HelperGroup { count, bandwidth })
                .collect(),
            demand: None,
            churn: None,
            learner: LearnerSpec::default(),
        }));
        self
    }

    /// Declares a multi-channel population (see [`MultiSpec`]).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn multichannel(
        mut self,
        channels: usize,
        bitrate: f64,
        helpers: usize,
        channels_per_helper: usize,
        viewers: usize,
        zipf_s: f64,
    ) -> Self {
        self.population = Some(PopulationSpec::Multi(MultiSpec {
            channels,
            bitrate,
            helpers,
            channels_per_helper,
            viewers,
            zipf_s,
            allocation: AllocationPolicy::default(),
        }));
        self
    }

    /// Sets per-peer demand (single-channel; call after [`Self::single`]).
    #[must_use]
    pub fn demand(mut self, demand: f64) -> Self {
        if let Some(PopulationSpec::Single(s)) = &mut self.population {
            s.demand = Some(demand);
        }
        self
    }

    /// Sets churn (single-channel; call after [`Self::single`]).
    #[must_use]
    pub fn churn(mut self, arrival: f64, departure: f64) -> Self {
        if let Some(PopulationSpec::Single(s)) = &mut self.population {
            s.churn = Some(ChurnSpec { arrival, departure });
        }
        self
    }

    /// Sets the learner spec (single-channel; call after [`Self::single`]).
    #[must_use]
    pub fn learner(mut self, learner: LearnerSpec) -> Self {
        if let Some(PopulationSpec::Single(s)) = &mut self.population {
            s.learner = learner;
        }
        self
    }

    /// Sets the allocation policy (multi-channel; call after
    /// [`Self::multichannel`]).
    #[must_use]
    pub fn allocation(mut self, allocation: AllocationPolicy) -> Self {
        if let Some(PopulationSpec::Multi(m)) = &mut self.population {
            m.allocation = allocation;
        }
        self
    }

    /// Sets the link-impairment plan (default none).
    #[must_use]
    pub fn impairment(mut self, plan: ImpairmentPlan) -> Self {
        self.impairment = plan;
        self
    }

    /// Appends a workload phase.
    #[must_use]
    pub fn phase(mut self, phase: WorkloadPhase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Enables `rths_obs` tracing for [`ScenarioSpec::run`] (default
    /// off). Tracing is bit-exact neutral.
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Validates and returns the spec.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] naming the first invalid field.
    pub fn build(self) -> Result<ScenarioSpec, ScenarioError> {
        let population = self
            .population
            .ok_or_else(|| invalid("population", "declare single() or multichannel()"))?;
        let spec = ScenarioSpec {
            version: SCENARIO_SPEC_VERSION,
            name: self.name,
            description: self.description,
            seed: self.seed,
            population,
            impairment: self.impairment,
            phases: self.phases,
            trace: self.trace,
        };
        spec.validate()?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Validation helpers
// ---------------------------------------------------------------------------

fn validate_single(s: &SingleSpec) -> Result<(), ScenarioError> {
    if s.peers == 0 {
        return Err(invalid("population.peers", "must be ≥ 1"));
    }
    if s.helpers.is_empty() {
        return Err(invalid("population.helpers", "at least one helper group is required"));
    }
    for (i, group) in s.helpers.iter().enumerate() {
        if group.count == 0 {
            return Err(invalid(format!("population.helpers[{i}].count"), "must be ≥ 1"));
        }
    }
    if let Some(demand) = s.demand {
        if !(demand.is_finite() && demand > 0.0) {
            return Err(invalid("population.demand", "must be positive and finite"));
        }
    }
    if let Some(churn) = s.churn {
        if !(churn.arrival.is_finite() && churn.arrival >= 0.0) {
            return Err(invalid("population.churn.arrival", "must be ≥ 0 and finite"));
        }
        if !(0.0..=1.0).contains(&churn.departure) {
            return Err(invalid("population.churn.departure", "must be in [0, 1]"));
        }
    }
    let l = &s.learner;
    if !(l.epsilon.is_finite() && l.epsilon > 0.0) {
        return Err(invalid("population.learner.epsilon", "must be positive and finite"));
    }
    if !(0.0..=1.0).contains(&l.delta) {
        return Err(invalid("population.learner.delta", "must be in [0, 1]"));
    }
    if let Some(mu) = l.mu {
        if !(mu.is_finite() && mu > 0.0) {
            return Err(invalid("population.learner.mu", "must be positive and finite"));
        }
    }
    Ok(())
}

fn validate_multi(m: &MultiSpec) -> Result<(), ScenarioError> {
    if m.channels == 0 {
        return Err(invalid("multichannel.channels", "must be ≥ 1"));
    }
    if !(m.bitrate.is_finite() && m.bitrate > 0.0) {
        return Err(invalid("multichannel.bitrate", "must be positive and finite"));
    }
    if m.helpers == 0 {
        return Err(invalid("multichannel.helpers", "must be ≥ 1"));
    }
    if m.channels_per_helper == 0 || m.channels_per_helper > m.channels {
        return Err(invalid("multichannel.channels_per_helper", "must be in [1, channels]"));
    }
    if m.viewers == 0 {
        return Err(invalid("multichannel.viewers", "must be ≥ 1"));
    }
    if !(m.zipf_s.is_finite() && m.zipf_s >= 0.0) {
        return Err(invalid("multichannel.zipf_s", "must be ≥ 0 and finite"));
    }
    Ok(())
}

/// TOML integers are i64; reject plans whose u64 fields would not
/// survive a serialize→parse cycle.
fn validate_impairment_serializable(plan: &ImpairmentPlan) -> Result<(), ScenarioError> {
    if plan.seed() > i64::MAX as u64 {
        return Err(invalid("impairment.seed", "must fit a TOML integer (≤ 2^63 − 1)"));
    }
    if plan.jitter_us() > i64::MAX as u64 {
        return Err(invalid("impairment.jitter_us", "must fit a TOML integer (≤ 2^63 − 1)"));
    }
    if let Some(latency) = plan.latency() {
        if latency.ticks.iter().any(|&t| t > i64::MAX as u64) {
            return Err(invalid(
                "impairment.latency.ticks",
                "every tick must fit a TOML integer (≤ 2^63 − 1)",
            ));
        }
    }
    Ok(())
}

fn validate_phase(
    phase: &WorkloadPhase,
    index: usize,
    population: &PopulationSpec,
) -> Result<(), ScenarioError> {
    let at = |field: &str| format!("phase[{index}].{field}");
    if phase.epochs() == 0 {
        return Err(invalid(at("epochs"), "must be ≥ 1"));
    }
    match population {
        PopulationSpec::Single(s) => {
            if phase.is_multichannel() {
                return Err(invalid(
                    at("kind"),
                    "multi-channel phase in a single-channel scenario",
                ));
            }
            if let WorkloadPhase::HelperFailure { helpers, .. } = phase {
                let total: usize = s.helpers.iter().map(|g| g.count).sum();
                if helpers.is_empty() {
                    return Err(invalid(at("helpers"), "must name at least one helper"));
                }
                if let Some(&bad) = helpers.iter().find(|&&h| h >= total) {
                    return Err(invalid(
                        at("helpers"),
                        format!("helper index {bad} out of range (scenario has {total})"),
                    ));
                }
            }
        }
        PopulationSpec::Multi(m) => {
            match phase {
                WorkloadPhase::Steady { .. }
                | WorkloadPhase::PopularityShift { .. }
                | WorkloadPhase::ChannelSurf { .. } => {}
                _ => {
                    return Err(invalid(
                        at("kind"),
                        "only steady/popularity_shift/channel_surf run on a multi-channel scenario",
                    ));
                }
            }
            if let WorkloadPhase::PopularityShift { from, to, .. } = phase {
                if *from >= m.channels || *to >= m.channels {
                    return Err(invalid(
                        at("from/to"),
                        format!("channel out of range (scenario has {})", m.channels),
                    ));
                }
            }
        }
    }
    match phase {
        WorkloadPhase::FlashCrowd { epochs, start, end, surge } => {
            if !(start <= end && end <= epochs) {
                return Err(invalid(at("start/end"), "need start ≤ end ≤ epochs"));
            }
            if !(surge.is_finite() && *surge >= 1.0) {
                return Err(invalid(at("surge"), "must be ≥ 1 and finite"));
            }
        }
        WorkloadPhase::Diurnal { period, amplitude, .. } => {
            if *period == 0 {
                return Err(invalid(at("period"), "must be ≥ 1"));
            }
            if !(amplitude.is_finite() && *amplitude >= 0.0) {
                return Err(invalid(at("amplitude"), "must be ≥ 0 and finite"));
            }
        }
        WorkloadPhase::PopularityShift { epochs, at: shift_at, .. } if shift_at > epochs => {
            return Err(invalid(at("at"), "must be ≤ epochs"));
        }
        WorkloadPhase::ChannelSurf { period, .. } if *period == 0 => {
            return Err(invalid(at("period"), "must be ≥ 1"));
        }
        _ => {}
    }
    Ok(())
}

/// Shrinks a phase to `epochs`, clamping phase-relative event epochs.
fn clamp_phase(phase: WorkloadPhase, epochs: u64) -> WorkloadPhase {
    match phase {
        WorkloadPhase::Steady { .. } => WorkloadPhase::Steady { epochs },
        WorkloadPhase::FlashCrowd { start, end, surge, .. } => WorkloadPhase::FlashCrowd {
            epochs,
            start: start.min(epochs),
            end: end.min(epochs),
            surge,
        },
        WorkloadPhase::Diurnal { period, amplitude, .. } => {
            WorkloadPhase::Diurnal { epochs, period, amplitude }
        }
        WorkloadPhase::HelperFailure { helpers, online, .. } => {
            WorkloadPhase::HelperFailure { epochs, helpers, online }
        }
        WorkloadPhase::PopularityShift { at, from, to, count, .. } => {
            WorkloadPhase::PopularityShift { epochs, at: at.min(epochs), from, to, count }
        }
        WorkloadPhase::ChannelSurf { period, moves, .. } => {
            WorkloadPhase::ChannelSurf { epochs, period, moves }
        }
    }
}

// ---------------------------------------------------------------------------
// TOML parsing
// ---------------------------------------------------------------------------

type Tbl = BTreeMap<String, Value>;

fn check_keys(tbl: &Tbl, path: &str, allowed: &[&str]) -> Result<(), ScenarioError> {
    for key in tbl.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(invalid(
                format!("{path}{}{key}", if path.is_empty() { "" } else { "." }),
                format!("unknown key (expected one of: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn req<'a>(tbl: &'a Tbl, path: &str, key: &str) -> Result<&'a Value, ScenarioError> {
    tbl.get(key).ok_or_else(|| invalid(format!("{path}.{key}"), "missing required key"))
}

fn as_str(v: &Value, path: &str) -> Result<String, ScenarioError> {
    v.as_str().map(str::to_owned).ok_or_else(|| invalid(path, "expected a string"))
}

fn as_f64(v: &Value, path: &str) -> Result<f64, ScenarioError> {
    v.as_float().ok_or_else(|| invalid(path, "expected a number"))
}

fn as_u64(v: &Value, path: &str) -> Result<u64, ScenarioError> {
    match v.as_int() {
        Some(i) if i >= 0 => Ok(i as u64),
        _ => Err(invalid(path, "expected a non-negative integer")),
    }
}

fn as_usize(v: &Value, path: &str) -> Result<usize, ScenarioError> {
    as_u64(v, path).map(|u| u as usize)
}

fn as_bool(v: &Value, path: &str) -> Result<bool, ScenarioError> {
    v.as_bool().ok_or_else(|| invalid(path, "expected a boolean"))
}

fn as_tbl<'a>(v: &'a Value, path: &str) -> Result<&'a Tbl, ScenarioError> {
    v.as_table().ok_or_else(|| invalid(path, "expected a table"))
}

fn as_f64_array(v: &Value, path: &str) -> Result<Vec<f64>, ScenarioError> {
    let items = v.as_array().ok_or_else(|| invalid(path, "expected an array"))?;
    items.iter().enumerate().map(|(i, item)| as_f64(item, &format!("{path}[{i}]"))).collect()
}

fn as_u64_array(v: &Value, path: &str) -> Result<Vec<u64>, ScenarioError> {
    let items = v.as_array().ok_or_else(|| invalid(path, "expected an array"))?;
    items.iter().enumerate().map(|(i, item)| as_u64(item, &format!("{path}[{i}]"))).collect()
}

fn opt_f64(tbl: &Tbl, path: &str, key: &str) -> Result<Option<f64>, ScenarioError> {
    tbl.get(key).map(|v| as_f64(v, &format!("{path}.{key}"))).transpose()
}

fn opt_u64_or(tbl: &Tbl, path: &str, key: &str, default: u64) -> Result<u64, ScenarioError> {
    match tbl.get(key) {
        Some(v) => as_u64(v, &format!("{path}.{key}")),
        None => Ok(default),
    }
}

fn req_f64(tbl: &Tbl, path: &str, key: &str) -> Result<f64, ScenarioError> {
    as_f64(req(tbl, path, key)?, &format!("{path}.{key}"))
}

fn req_u64(tbl: &Tbl, path: &str, key: &str) -> Result<u64, ScenarioError> {
    as_u64(req(tbl, path, key)?, &format!("{path}.{key}"))
}

fn req_usize(tbl: &Tbl, path: &str, key: &str) -> Result<usize, ScenarioError> {
    as_usize(req(tbl, path, key)?, &format!("{path}.{key}"))
}

fn req_str(tbl: &Tbl, path: &str, key: &str) -> Result<String, ScenarioError> {
    as_str(req(tbl, path, key)?, &format!("{path}.{key}"))
}

fn parse_spec(root: &Tbl) -> Result<ScenarioSpec, ScenarioError> {
    check_keys(
        root,
        "",
        &[
            "version",
            "name",
            "description",
            "seed",
            "population",
            "multichannel",
            "impairment",
            "phase",
            "trace",
        ],
    )?;
    let version = req(root, "", "version")?
        .as_int()
        .ok_or_else(|| invalid("version", "expected an integer"))?;
    let name = req_str(root, "", "name")?;
    let description = match root.get("description") {
        Some(v) => as_str(v, "description")?,
        None => String::new(),
    };
    let seed = opt_u64_or(root, "", "seed", 0)?;
    let trace = match root.get("trace") {
        Some(v) => as_bool(v, "trace")?,
        None => false,
    };

    let population = match (root.get("population"), root.get("multichannel")) {
        (Some(_), Some(_)) => {
            return Err(invalid(
                "population",
                "declare either [population] or [multichannel], not both",
            ));
        }
        (Some(v), None) => PopulationSpec::Single(parse_single(as_tbl(v, "population")?)?),
        (None, Some(v)) => PopulationSpec::Multi(parse_multi(as_tbl(v, "multichannel")?)?),
        (None, None) => {
            return Err(invalid(
                "population",
                "a [population] or [multichannel] table is required",
            ));
        }
    };

    let impairment = match root.get("impairment") {
        Some(v) => parse_impairment(as_tbl(v, "impairment")?)?,
        None => ImpairmentPlan::none(),
    };

    let phases = match root.get("phase") {
        Some(v) => {
            let items =
                v.as_array().ok_or_else(|| invalid("phase", "expected [[phase]] entries"))?;
            items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let path = format!("phase[{i}]");
                    parse_phase(as_tbl(item, &path)?, &path)
                })
                .collect::<Result<Vec<_>, _>>()?
        }
        None => Vec::new(),
    };

    Ok(ScenarioSpec { version, name, description, seed, population, impairment, phases, trace })
}

fn parse_single(tbl: &Tbl) -> Result<SingleSpec, ScenarioError> {
    let path = "population";
    check_keys(tbl, path, &["peers", "demand", "helpers", "churn", "learner"])?;
    let peers = req_usize(tbl, path, "peers")?;
    let demand = opt_f64(tbl, path, "demand")?;
    let helpers = match tbl.get("helpers") {
        Some(v) => {
            let items = v.as_array().ok_or_else(|| {
                invalid("population.helpers", "expected [[population.helpers]] entries")
            })?;
            items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let gpath = format!("population.helpers[{i}]");
                    parse_helper_group(as_tbl(item, &gpath)?, &gpath)
                })
                .collect::<Result<Vec<_>, _>>()?
        }
        None => Vec::new(),
    };
    let churn = match tbl.get("churn") {
        Some(v) => {
            let cpath = "population.churn";
            let ctbl = as_tbl(v, cpath)?;
            check_keys(ctbl, cpath, &["arrival", "departure"])?;
            Some(ChurnSpec {
                arrival: req_f64(ctbl, cpath, "arrival")?,
                departure: req_f64(ctbl, cpath, "departure")?,
            })
        }
        None => None,
    };
    let learner = match tbl.get("learner") {
        Some(v) => parse_learner(as_tbl(v, "population.learner")?)?,
        None => LearnerSpec::default(),
    };
    Ok(SingleSpec { peers, helpers, demand, churn, learner })
}

fn parse_helper_group(tbl: &Tbl, path: &str) -> Result<HelperGroup, ScenarioError> {
    let kind = req_str(tbl, path, "kind")?;
    let bandwidth = match kind.as_str() {
        "paper" => {
            check_keys(tbl, path, &["count", "kind", "stay"])?;
            BandwidthSpec::Paper { stay: req_f64(tbl, path, "stay")? }
        }
        "ladder" => {
            check_keys(tbl, path, &["count", "kind", "levels", "stay"])?;
            BandwidthSpec::Ladder {
                levels: as_f64_array(req(tbl, path, "levels")?, &format!("{path}.levels"))?,
                stay: req_f64(tbl, path, "stay")?,
            }
        }
        "constant" => {
            check_keys(tbl, path, &["count", "kind", "level"])?;
            BandwidthSpec::Constant(req_f64(tbl, path, "level")?)
        }
        "random_walk" => {
            check_keys(
                tbl,
                path,
                &["count", "kind", "initial", "min", "max", "step", "move_prob"],
            )?;
            BandwidthSpec::RandomWalk {
                initial: req_f64(tbl, path, "initial")?,
                min: req_f64(tbl, path, "min")?,
                max: req_f64(tbl, path, "max")?,
                step: req_f64(tbl, path, "step")?,
                move_prob: req_f64(tbl, path, "move_prob")?,
            }
        }
        "gilbert_elliott" => {
            check_keys(tbl, path, &["count", "kind", "good", "bad", "p_gb", "p_bg"])?;
            BandwidthSpec::GilbertElliott {
                good: req_f64(tbl, path, "good")?,
                bad: req_f64(tbl, path, "bad")?,
                p_gb: req_f64(tbl, path, "p_gb")?,
                p_bg: req_f64(tbl, path, "p_bg")?,
            }
        }
        "regime_shift" => {
            check_keys(tbl, path, &["count", "kind", "before", "after", "at"])?;
            BandwidthSpec::RegimeShift {
                before: req_f64(tbl, path, "before")?,
                after: req_f64(tbl, path, "after")?,
                at: req_u64(tbl, path, "at")?,
            }
        }
        "trace" => {
            check_keys(tbl, path, &["count", "kind", "samples"])?;
            BandwidthSpec::Trace(as_f64_array(
                req(tbl, path, "samples")?,
                &format!("{path}.samples"),
            )?)
        }
        other => {
            return Err(invalid(
                format!("{path}.kind"),
                format!(
                    "unknown bandwidth kind `{other}` (expected paper, ladder, constant, \
                     random_walk, gilbert_elliott, regime_shift, trace)"
                ),
            ));
        }
    };
    Ok(HelperGroup { count: req_usize(tbl, path, "count")?, bandwidth })
}

fn parse_learner(tbl: &Tbl) -> Result<LearnerSpec, ScenarioError> {
    let path = "population.learner";
    check_keys(tbl, path, &["algorithm", "epsilon", "delta", "mu", "conditional"])?;
    let default = LearnerSpec::default();
    let algorithm = match tbl.get("algorithm") {
        Some(v) => match as_str(v, &format!("{path}.algorithm"))?.as_str() {
            "rths" => Algorithm::Rths,
            "regret_matching" => Algorithm::RegretMatching,
            "history_rths" => Algorithm::HistoryRths,
            "exp3" => Algorithm::Exp3,
            other => {
                return Err(invalid(
                    format!("{path}.algorithm"),
                    format!(
                        "unknown algorithm `{other}` (expected rths, regret_matching, \
                         history_rths, exp3)"
                    ),
                ));
            }
        },
        None => default.algorithm,
    };
    let epsilon = opt_f64(tbl, path, "epsilon")?.unwrap_or(default.epsilon);
    let delta = opt_f64(tbl, path, "delta")?.unwrap_or(default.delta);
    let mu = opt_f64(tbl, path, "mu")?;
    let conditional = match tbl.get("conditional") {
        Some(v) => as_bool(v, &format!("{path}.conditional"))?,
        None => default.conditional,
    };
    Ok(LearnerSpec { algorithm, epsilon, delta, mu, conditional })
}

fn parse_multi(tbl: &Tbl) -> Result<MultiSpec, ScenarioError> {
    let path = "multichannel";
    check_keys(
        tbl,
        path,
        &[
            "channels",
            "bitrate",
            "helpers",
            "channels_per_helper",
            "viewers",
            "zipf_s",
            "allocation",
        ],
    )?;
    let allocation = match tbl.get("allocation") {
        Some(v) => match as_str(v, &format!("{path}.allocation"))?.as_str() {
            "even_split" => AllocationPolicy::EvenSplit,
            "load_proportional" => AllocationPolicy::LoadProportional,
            "water_filling" => AllocationPolicy::WaterFilling,
            "learned" => AllocationPolicy::Learned,
            other => {
                return Err(invalid(
                    format!("{path}.allocation"),
                    format!(
                        "unknown allocation `{other}` (expected even_split, load_proportional, \
                         water_filling, learned)"
                    ),
                ));
            }
        },
        None => AllocationPolicy::default(),
    };
    Ok(MultiSpec {
        channels: req_usize(tbl, path, "channels")?,
        bitrate: req_f64(tbl, path, "bitrate")?,
        helpers: req_usize(tbl, path, "helpers")?,
        channels_per_helper: req_usize(tbl, path, "channels_per_helper")?,
        viewers: req_usize(tbl, path, "viewers")?,
        zipf_s: req_f64(tbl, path, "zipf_s")?,
        allocation,
    })
}

fn parse_impairment(tbl: &Tbl) -> Result<ImpairmentPlan, ScenarioError> {
    let path = "impairment";
    check_keys(
        tbl,
        path,
        &["seed", "jitter_us", "loss", "token_bucket", "link_bandwidth", "latency"],
    )?;
    let seed = req_u64(tbl, path, "seed")?;
    let mut builder = ImpairmentPlan::builder(seed);
    if let Some(v) = tbl.get("loss") {
        let lpath = "impairment.loss";
        let ltbl = as_tbl(v, lpath)?;
        match req_str(ltbl, lpath, "kind")?.as_str() {
            "uniform" => {
                check_keys(ltbl, lpath, &["kind", "loss"])?;
                builder = builder.uniform_loss(req_f64(ltbl, lpath, "loss")?);
            }
            "gilbert_elliott" => {
                check_keys(
                    ltbl,
                    lpath,
                    &["kind", "p_enter_bad", "p_exit_bad", "bad_loss", "good_loss"],
                )?;
                builder = builder.gilbert_loss(
                    req_f64(ltbl, lpath, "p_enter_bad")?,
                    req_f64(ltbl, lpath, "p_exit_bad")?,
                    req_f64(ltbl, lpath, "bad_loss")?,
                    req_f64(ltbl, lpath, "good_loss")?,
                );
            }
            other => {
                return Err(invalid(
                    format!("{lpath}.kind"),
                    format!("unknown loss kind `{other}` (expected uniform, gilbert_elliott)"),
                ));
            }
        }
    }
    if let Some(v) = tbl.get("token_bucket") {
        let bpath = "impairment.token_bucket";
        let btbl = as_tbl(v, bpath)?;
        check_keys(btbl, bpath, &["rate_kbps", "burst_kbits"])?;
        builder = builder.token_bucket(
            req_f64(btbl, bpath, "rate_kbps")?,
            req_f64(btbl, bpath, "burst_kbits")?,
        );
    }
    if let Some(v) = tbl.get("link_bandwidth") {
        let bpath = "impairment.link_bandwidth";
        let btbl = as_tbl(v, bpath)?;
        check_keys(btbl, bpath, &["levels", "stay"])?;
        builder = builder.link_bandwidth(
            as_f64_array(req(btbl, bpath, "levels")?, &format!("{bpath}.levels"))?,
            req_f64(btbl, bpath, "stay")?,
        );
    }
    if let Some(v) = tbl.get("latency") {
        let lpath = "impairment.latency";
        let ltbl = as_tbl(v, lpath)?;
        check_keys(ltbl, lpath, &["ticks", "stay"])?;
        builder = builder.latency(
            as_u64_array(req(ltbl, lpath, "ticks")?, &format!("{lpath}.ticks"))?,
            req_f64(ltbl, lpath, "stay")?,
        );
    }
    let plan = builder.build()?;
    let jitter_us = opt_u64_or(tbl, path, "jitter_us", 0)?;
    Ok(if jitter_us > 0 { plan.with_jitter(jitter_us) } else { plan })
}

fn parse_phase(tbl: &Tbl, path: &str) -> Result<WorkloadPhase, ScenarioError> {
    let kind = req_str(tbl, path, "kind")?;
    let phase = match kind.as_str() {
        "steady" => {
            check_keys(tbl, path, &["kind", "epochs"])?;
            WorkloadPhase::Steady { epochs: req_u64(tbl, path, "epochs")? }
        }
        "flash_crowd" => {
            check_keys(tbl, path, &["kind", "epochs", "start", "end", "surge"])?;
            WorkloadPhase::FlashCrowd {
                epochs: req_u64(tbl, path, "epochs")?,
                start: req_u64(tbl, path, "start")?,
                end: req_u64(tbl, path, "end")?,
                surge: req_f64(tbl, path, "surge")?,
            }
        }
        "diurnal" => {
            check_keys(tbl, path, &["kind", "epochs", "period", "amplitude"])?;
            WorkloadPhase::Diurnal {
                epochs: req_u64(tbl, path, "epochs")?,
                period: req_u64(tbl, path, "period")?,
                amplitude: req_f64(tbl, path, "amplitude")?,
            }
        }
        "helper_failure" => {
            check_keys(tbl, path, &["kind", "epochs", "helpers", "online"])?;
            let helpers = as_u64_array(req(tbl, path, "helpers")?, &format!("{path}.helpers"))?
                .into_iter()
                .map(|h| h as usize)
                .collect();
            WorkloadPhase::HelperFailure {
                epochs: req_u64(tbl, path, "epochs")?,
                helpers,
                online: as_bool(req(tbl, path, "online")?, &format!("{path}.online"))?,
            }
        }
        "popularity_shift" => {
            check_keys(tbl, path, &["kind", "epochs", "at", "from", "to", "count"])?;
            WorkloadPhase::PopularityShift {
                epochs: req_u64(tbl, path, "epochs")?,
                at: req_u64(tbl, path, "at")?,
                from: req_usize(tbl, path, "from")?,
                to: req_usize(tbl, path, "to")?,
                count: req_usize(tbl, path, "count")?,
            }
        }
        "channel_surf" => {
            check_keys(tbl, path, &["kind", "epochs", "period", "moves"])?;
            WorkloadPhase::ChannelSurf {
                epochs: req_u64(tbl, path, "epochs")?,
                period: req_u64(tbl, path, "period")?,
                moves: req_usize(tbl, path, "moves")?,
            }
        }
        other => {
            return Err(invalid(
                format!("{path}.kind"),
                format!(
                    "unknown phase kind `{other}` (expected steady, flash_crowd, diurnal, \
                     helper_failure, popularity_shift, channel_surf)"
                ),
            ));
        }
    };
    Ok(phase)
}

// ---------------------------------------------------------------------------
// TOML serialization
// ---------------------------------------------------------------------------

fn single_tree(s: &SingleSpec) -> Tbl {
    let mut tbl = BTreeMap::new();
    tbl.insert("peers".into(), Value::Int(s.peers as i64));
    if let Some(demand) = s.demand {
        tbl.insert("demand".into(), Value::Float(demand));
    }
    let groups: Vec<Value> =
        s.helpers.iter().map(|g| Value::Table(helper_group_tree(g))).collect();
    tbl.insert("helpers".into(), Value::Array(groups));
    if let Some(churn) = s.churn {
        let mut ctbl = BTreeMap::new();
        ctbl.insert("arrival".into(), Value::Float(churn.arrival));
        ctbl.insert("departure".into(), Value::Float(churn.departure));
        tbl.insert("churn".into(), Value::Table(ctbl));
    }
    if s.learner != LearnerSpec::default() {
        tbl.insert("learner".into(), Value::Table(learner_tree(&s.learner)));
    }
    tbl
}

fn helper_group_tree(g: &HelperGroup) -> Tbl {
    let mut tbl = BTreeMap::new();
    tbl.insert("count".into(), Value::Int(g.count as i64));
    let kind = |k: &str| Value::Str(k.to_owned());
    match &g.bandwidth {
        BandwidthSpec::Paper { stay } => {
            tbl.insert("kind".into(), kind("paper"));
            tbl.insert("stay".into(), Value::Float(*stay));
        }
        BandwidthSpec::Ladder { levels, stay } => {
            tbl.insert("kind".into(), kind("ladder"));
            tbl.insert("levels".into(), float_array(levels));
            tbl.insert("stay".into(), Value::Float(*stay));
        }
        BandwidthSpec::Constant(level) => {
            tbl.insert("kind".into(), kind("constant"));
            tbl.insert("level".into(), Value::Float(*level));
        }
        BandwidthSpec::RandomWalk { initial, min, max, step, move_prob } => {
            tbl.insert("kind".into(), kind("random_walk"));
            tbl.insert("initial".into(), Value::Float(*initial));
            tbl.insert("min".into(), Value::Float(*min));
            tbl.insert("max".into(), Value::Float(*max));
            tbl.insert("step".into(), Value::Float(*step));
            tbl.insert("move_prob".into(), Value::Float(*move_prob));
        }
        BandwidthSpec::GilbertElliott { good, bad, p_gb, p_bg } => {
            tbl.insert("kind".into(), kind("gilbert_elliott"));
            tbl.insert("good".into(), Value::Float(*good));
            tbl.insert("bad".into(), Value::Float(*bad));
            tbl.insert("p_gb".into(), Value::Float(*p_gb));
            tbl.insert("p_bg".into(), Value::Float(*p_bg));
        }
        BandwidthSpec::RegimeShift { before, after, at } => {
            tbl.insert("kind".into(), kind("regime_shift"));
            tbl.insert("before".into(), Value::Float(*before));
            tbl.insert("after".into(), Value::Float(*after));
            tbl.insert("at".into(), Value::Int(*at as i64));
        }
        BandwidthSpec::Trace(samples) => {
            tbl.insert("kind".into(), kind("trace"));
            tbl.insert("samples".into(), float_array(samples));
        }
    }
    tbl
}

fn learner_tree(l: &LearnerSpec) -> Tbl {
    let mut tbl = BTreeMap::new();
    let algorithm = match l.algorithm {
        Algorithm::Rths => "rths",
        Algorithm::RegretMatching => "regret_matching",
        Algorithm::HistoryRths => "history_rths",
        Algorithm::Exp3 => "exp3",
    };
    tbl.insert("algorithm".into(), Value::Str(algorithm.to_owned()));
    tbl.insert("epsilon".into(), Value::Float(l.epsilon));
    tbl.insert("delta".into(), Value::Float(l.delta));
    if let Some(mu) = l.mu {
        tbl.insert("mu".into(), Value::Float(mu));
    }
    tbl.insert("conditional".into(), Value::Bool(l.conditional));
    tbl
}

fn multi_tree(m: &MultiSpec) -> Tbl {
    let mut tbl = BTreeMap::new();
    tbl.insert("channels".into(), Value::Int(m.channels as i64));
    tbl.insert("bitrate".into(), Value::Float(m.bitrate));
    tbl.insert("helpers".into(), Value::Int(m.helpers as i64));
    tbl.insert("channels_per_helper".into(), Value::Int(m.channels_per_helper as i64));
    tbl.insert("viewers".into(), Value::Int(m.viewers as i64));
    tbl.insert("zipf_s".into(), Value::Float(m.zipf_s));
    let allocation = match m.allocation {
        AllocationPolicy::EvenSplit => "even_split",
        AllocationPolicy::LoadProportional => "load_proportional",
        AllocationPolicy::WaterFilling => "water_filling",
        AllocationPolicy::Learned => "learned",
    };
    tbl.insert("allocation".into(), Value::Str(allocation.to_owned()));
    tbl
}

fn impairment_tree(plan: &ImpairmentPlan) -> Tbl {
    let mut tbl = BTreeMap::new();
    tbl.insert("seed".into(), Value::Int(plan.seed() as i64));
    if plan.jitter_us() > 0 {
        tbl.insert("jitter_us".into(), Value::Int(plan.jitter_us() as i64));
    }
    match plan.loss() {
        LossModel::None => {}
        LossModel::Uniform { loss } => {
            let mut ltbl = BTreeMap::new();
            ltbl.insert("kind".into(), Value::Str("uniform".into()));
            ltbl.insert("loss".into(), Value::Float(*loss));
            tbl.insert("loss".into(), Value::Table(ltbl));
        }
        LossModel::GilbertElliott { p_enter_bad, p_exit_bad, bad_loss, good_loss } => {
            let mut ltbl = BTreeMap::new();
            ltbl.insert("kind".into(), Value::Str("gilbert_elliott".into()));
            ltbl.insert("p_enter_bad".into(), Value::Float(*p_enter_bad));
            ltbl.insert("p_exit_bad".into(), Value::Float(*p_exit_bad));
            ltbl.insert("bad_loss".into(), Value::Float(*bad_loss));
            ltbl.insert("good_loss".into(), Value::Float(*good_loss));
            tbl.insert("loss".into(), Value::Table(ltbl));
        }
    }
    if let Some(bucket) = plan.token_bucket() {
        let mut btbl = BTreeMap::new();
        btbl.insert("rate_kbps".into(), Value::Float(bucket.rate_kbps));
        btbl.insert("burst_kbits".into(), Value::Float(bucket.burst_kbits));
        tbl.insert("token_bucket".into(), Value::Table(btbl));
    }
    if let Some(link) = plan.link_bandwidth() {
        let mut btbl = BTreeMap::new();
        btbl.insert("levels".into(), float_array(&link.levels));
        btbl.insert("stay".into(), Value::Float(link.stay));
        tbl.insert("link_bandwidth".into(), Value::Table(btbl));
    }
    if let Some(latency) = plan.latency() {
        let mut ltbl = BTreeMap::new();
        ltbl.insert(
            "ticks".into(),
            Value::Array(latency.ticks.iter().map(|&t| Value::Int(t as i64)).collect()),
        );
        ltbl.insert("stay".into(), Value::Float(latency.stay));
        tbl.insert("latency".into(), Value::Table(ltbl));
    }
    tbl
}

fn phase_tree(phase: &WorkloadPhase) -> Tbl {
    let mut tbl = BTreeMap::new();
    let kind = |k: &str| Value::Str(k.to_owned());
    match phase {
        WorkloadPhase::Steady { epochs } => {
            tbl.insert("kind".into(), kind("steady"));
            tbl.insert("epochs".into(), Value::Int(*epochs as i64));
        }
        WorkloadPhase::FlashCrowd { epochs, start, end, surge } => {
            tbl.insert("kind".into(), kind("flash_crowd"));
            tbl.insert("epochs".into(), Value::Int(*epochs as i64));
            tbl.insert("start".into(), Value::Int(*start as i64));
            tbl.insert("end".into(), Value::Int(*end as i64));
            tbl.insert("surge".into(), Value::Float(*surge));
        }
        WorkloadPhase::Diurnal { epochs, period, amplitude } => {
            tbl.insert("kind".into(), kind("diurnal"));
            tbl.insert("epochs".into(), Value::Int(*epochs as i64));
            tbl.insert("period".into(), Value::Int(*period as i64));
            tbl.insert("amplitude".into(), Value::Float(*amplitude));
        }
        WorkloadPhase::HelperFailure { epochs, helpers, online } => {
            tbl.insert("kind".into(), kind("helper_failure"));
            tbl.insert("epochs".into(), Value::Int(*epochs as i64));
            tbl.insert(
                "helpers".into(),
                Value::Array(helpers.iter().map(|&h| Value::Int(h as i64)).collect()),
            );
            tbl.insert("online".into(), Value::Bool(*online));
        }
        WorkloadPhase::PopularityShift { epochs, at, from, to, count } => {
            tbl.insert("kind".into(), kind("popularity_shift"));
            tbl.insert("epochs".into(), Value::Int(*epochs as i64));
            tbl.insert("at".into(), Value::Int(*at as i64));
            tbl.insert("from".into(), Value::Int(*from as i64));
            tbl.insert("to".into(), Value::Int(*to as i64));
            tbl.insert("count".into(), Value::Int(*count as i64));
        }
        WorkloadPhase::ChannelSurf { epochs, period, moves } => {
            tbl.insert("kind".into(), kind("channel_surf"));
            tbl.insert("epochs".into(), Value::Int(*epochs as i64));
            tbl.insert("period".into(), Value::Int(*period as i64));
            tbl.insert("moves".into(), Value::Int(*moves as i64));
        }
    }
    tbl
}

fn float_array(values: &[f64]) -> Value {
    Value::Array(values.iter().map(|&v| Value::Float(v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impairment::LinkShaper;

    fn zoo_like_spec() -> ScenarioSpec {
        ScenarioSpec::builder("unit_zoo")
            .description("builder-made spec")
            .seed(9)
            .single(
                12,
                vec![
                    (3, BandwidthSpec::Paper { stay: 0.98 }),
                    (1, BandwidthSpec::Ladder { levels: vec![400.0, 650.0], stay: 0.9 }),
                ],
            )
            .demand(380.0)
            .churn(1.5, 0.02)
            .impairment(
                ImpairmentPlan::builder(4)
                    .gilbert_loss(0.05, 0.4, 0.8, 0.01)
                    .token_bucket(500.0, 900.0)
                    .build()
                    .unwrap(),
            )
            .phase(WorkloadPhase::Steady { epochs: 40 })
            .phase(WorkloadPhase::FlashCrowd { epochs: 60, start: 10, end: 30, surge: 4.0 })
            .build()
            .unwrap()
    }

    #[test]
    fn builder_and_toml_agree() {
        let spec = zoo_like_spec();
        let text = spec.to_toml_string();
        let reparsed = ScenarioSpec::from_toml_str(&text).unwrap();
        assert_eq!(spec, reparsed, "round-trip mismatch:\n{text}");
    }

    #[test]
    fn multichannel_round_trips() {
        let spec = ScenarioSpec::builder("surf")
            .seed(3)
            .multichannel(4, 350.0, 8, 2, 60, 1.1)
            .allocation(AllocationPolicy::LoadProportional)
            .phase(WorkloadPhase::ChannelSurf { epochs: 30, period: 5, moves: 3 })
            .phase(WorkloadPhase::PopularityShift {
                epochs: 20,
                at: 10,
                from: 0,
                to: 3,
                count: 5,
            })
            .build()
            .unwrap();
        let reparsed = ScenarioSpec::from_toml_str(&spec.to_toml_string()).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn run_matches_direct_system() {
        // A ScenarioSpec run is exactly the equivalent System run.
        let spec = ScenarioSpec::builder("direct")
            .seed(11)
            .single(10, vec![(4, BandwidthSpec::Paper { stay: 0.98 })])
            .demand(380.0)
            .phase(WorkloadPhase::Steady { epochs: 80 })
            .build()
            .unwrap();
        let report = spec.run();
        let config = SimConfig::builder(10, vec![BandwidthSpec::Paper { stay: 0.98 }; 4])
            .seed(11)
            .demand(380.0)
            .build();
        let direct = System::new(config).run(80);
        assert_eq!(report.epochs, 80);
        assert_eq!(report.welfare, direct.metrics.welfare.values());
        assert_eq!(report.server_load, direct.metrics.server_load.values());
    }

    #[test]
    fn impairment_changes_the_run() {
        let base = ScenarioSpec::builder("clean")
            .seed(5)
            .single(10, vec![(4, BandwidthSpec::Paper { stay: 0.98 })])
            .demand(380.0)
            .phase(WorkloadPhase::Steady { epochs: 60 })
            .build()
            .unwrap();
        let impaired = ScenarioSpec::builder("lossy")
            .seed(5)
            .single(10, vec![(4, BandwidthSpec::Paper { stay: 0.98 })])
            .demand(380.0)
            .impairment(
                ImpairmentPlan::builder(2).gilbert_loss(0.2, 0.3, 0.9, 0.0).build().unwrap(),
            )
            .phase(WorkloadPhase::Steady { epochs: 60 })
            .build()
            .unwrap();
        let clean_welfare: f64 = base.run().welfare.iter().sum();
        let lossy_welfare: f64 = impaired.run().welfare.iter().sum();
        assert!(
            lossy_welfare < clean_welfare,
            "bursty loss should cost welfare: {lossy_welfare} vs {clean_welfare}"
        );
    }

    #[test]
    fn epoch_cap_truncates_and_clamps() {
        let spec = zoo_like_spec().with_epoch_cap(50);
        assert_eq!(spec.total_epochs(), 50);
        assert_eq!(
            spec.phases(),
            &[
                WorkloadPhase::Steady { epochs: 40 },
                WorkloadPhase::FlashCrowd { epochs: 10, start: 10, end: 10, surge: 4.0 },
            ]
        );
        // A cap beyond the total is a no-op.
        assert_eq!(zoo_like_spec().with_epoch_cap(1000), zoo_like_spec());
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let err = ScenarioSpec::from_toml_str(
            "version = 1\nname = \"x\"\n[population]\npeers = 4\npeeers = 4\n\
             [[population.helpers]]\ncount = 1\nkind = \"paper\"\nstay = 0.9\n\
             [[phase]]\nkind = \"steady\"\nepochs = 5\n",
        )
        .unwrap_err();
        match err {
            ScenarioError::Invalid { path, .. } => assert_eq!(path, "population.peeers"),
            other => panic!("expected unknown-key error, got {other}"),
        }
    }

    #[test]
    fn version_and_cross_engine_phases_are_rejected() {
        assert!(matches!(
            ScenarioSpec::from_toml_str(
                "version = 2\nname = \"x\"\n[population]\npeers = 4\n\
                 [[population.helpers]]\ncount = 1\nkind = \"paper\"\nstay = 0.9\n\
                 [[phase]]\nkind = \"steady\"\nepochs = 5\n",
            ),
            Err(ScenarioError::Invalid { .. })
        ));
        let err = ScenarioSpec::builder("x")
            .single(4, vec![(1, BandwidthSpec::Paper { stay: 0.9 })])
            .phase(WorkloadPhase::ChannelSurf { epochs: 10, period: 2, moves: 1 })
            .build()
            .unwrap_err();
        match err {
            ScenarioError::Invalid { path, .. } => assert_eq!(path, "phase[0].kind"),
            other => panic!("expected phase-kind error, got {other}"),
        }
    }

    #[test]
    fn impairment_errors_surface_with_field_names() {
        let err = ScenarioSpec::from_toml_str(
            "version = 1\nname = \"x\"\n[population]\npeers = 4\n\
             [[population.helpers]]\ncount = 1\nkind = \"paper\"\nstay = 0.9\n\
             [impairment]\nseed = 1\n[impairment.loss]\nkind = \"uniform\"\nloss = 1.5\n\
             [[phase]]\nkind = \"steady\"\nepochs = 5\n",
        )
        .unwrap_err();
        match err {
            ScenarioError::Impairment(e) => assert_eq!(e.field(), "loss"),
            other => panic!("expected impairment error, got {other}"),
        }
    }

    #[test]
    fn helper_failure_index_bounds_are_checked() {
        let err = ScenarioSpec::builder("x")
            .single(4, vec![(2, BandwidthSpec::Paper { stay: 0.9 })])
            .phase(WorkloadPhase::HelperFailure { epochs: 10, helpers: vec![2], online: false })
            .build()
            .unwrap_err();
        match err {
            ScenarioError::Invalid { path, message } => {
                assert_eq!(path, "phase[0].helpers");
                assert!(message.contains("out of range"), "{message}");
            }
            other => panic!("expected index error, got {other}"),
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let spec = zoo_like_spec();
        let a = spec.run();
        let b = spec.run();
        assert_eq!(a.welfare, b.welfare);
        assert_eq!(a.final_population, b.final_population);
        // The LinkShaper type stays exported for backend use.
        let _ = LinkShaper::new();
    }
}
