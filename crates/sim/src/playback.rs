//! Playback-buffer model: from delivered rates to viewing experience.
//!
//! The paper motivates stability with quality of experience: "switching
//! back and forth between helpers will result in frequent interruption
//! in the streaming flow" (§III.B). This module turns a peer's per-epoch
//! delivered-rate series into the QoE quantities a player actually
//! exposes: **startup delay**, **stall (rebuffering) events**, and the
//! **rebuffer ratio**, using the standard fluid buffer model:
//!
//! * each epoch, `rate/bitrate` seconds of video are downloaded;
//! * playback drains 1 second of content per second of wall-clock once
//!   started;
//! * playback starts (and restarts after a stall) when the buffer
//!   reaches `startup_buffer` seconds.

/// Fluid playback-buffer simulator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlaybackBuffer {
    /// Stream bitrate (kbps): 1 second of content = `bitrate` kbits.
    bitrate: f64,
    /// Wall-clock seconds per simulation epoch.
    epoch_seconds: f64,
    /// Buffered content required to (re)start playback, in seconds.
    startup_buffer: f64,
    /// Maximum buffered content (player cap), in seconds.
    max_buffer: f64,
}

/// QoE summary of one playback session.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlaybackStats {
    /// Seconds before playback first started (∞ if it never did —
    /// reported as the full session length).
    pub startup_delay: f64,
    /// Number of stall (rebuffering) events after startup.
    pub stall_events: usize,
    /// Total seconds spent stalled after startup.
    pub stalled_seconds: f64,
    /// Fraction of post-startup wall-clock time spent stalled.
    pub rebuffer_ratio: f64,
    /// Seconds of content actually played.
    pub played_seconds: f64,
}

impl PlaybackBuffer {
    /// Creates a buffer model.
    ///
    /// # Panics
    ///
    /// Panics unless `bitrate`, `epoch_seconds`, `startup_buffer` are
    /// positive and `max_buffer >= startup_buffer`.
    pub fn new(bitrate: f64, epoch_seconds: f64, startup_buffer: f64, max_buffer: f64) -> Self {
        assert!(bitrate > 0.0 && bitrate.is_finite(), "bitrate must be positive");
        assert!(epoch_seconds > 0.0, "epoch length must be positive");
        assert!(startup_buffer > 0.0, "startup buffer must be positive");
        assert!(max_buffer >= startup_buffer, "max buffer below startup threshold");
        Self { bitrate, epoch_seconds, startup_buffer, max_buffer }
    }

    /// A typical live-streaming profile: 2 s startup, 30 s buffer cap,
    /// 1 s epochs.
    pub fn live_default(bitrate: f64) -> Self {
        Self::new(bitrate, 1.0, 2.0, 30.0)
    }

    /// Replays a delivered-rate series (kbps per epoch) through the
    /// buffer and returns the session's QoE statistics.
    pub fn replay(&self, rates: &[f64]) -> PlaybackStats {
        let mut buffer = 0.0f64; // seconds of content
        let mut playing = false;
        let mut startup_delay = None;
        let mut stall_events = 0usize;
        let mut stalled_seconds = 0.0;
        let mut played_seconds = 0.0;
        let mut clock = 0.0;

        for &rate in rates {
            // Download this epoch's content.
            buffer = (buffer + rate / self.bitrate * self.epoch_seconds).min(self.max_buffer);
            if !playing {
                if buffer >= self.startup_buffer {
                    playing = true;
                    if startup_delay.is_none() {
                        startup_delay = Some(clock + self.epoch_seconds);
                    }
                } else if startup_delay.is_some() {
                    // Stalled mid-session, waiting to rebuffer.
                    stalled_seconds += self.epoch_seconds;
                }
            }
            if playing {
                let drained = self.epoch_seconds.min(buffer);
                played_seconds += drained;
                buffer -= drained;
                if buffer <= 1e-12 && drained < self.epoch_seconds {
                    // Ran dry mid-epoch: stall.
                    playing = false;
                    stall_events += 1;
                    stalled_seconds += self.epoch_seconds - drained;
                }
            }
            clock += self.epoch_seconds;
        }

        let startup = startup_delay.unwrap_or(clock);
        let post_startup = (clock - startup).max(0.0);
        PlaybackStats {
            startup_delay: startup,
            stall_events,
            stalled_seconds,
            rebuffer_ratio: if post_startup > 0.0 {
                (stalled_seconds / post_startup).min(1.0)
            } else {
                0.0
            },
            played_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer() -> PlaybackBuffer {
        // bitrate 400 kbps, 1 s epochs, 2 s startup, 10 s cap.
        PlaybackBuffer::new(400.0, 1.0, 2.0, 10.0)
    }

    #[test]
    fn perfect_delivery_never_stalls() {
        let b = buffer();
        // Delivering exactly the bitrate: 1 s of content per 1 s epoch.
        let stats = b.replay(&vec![400.0; 100]);
        assert_eq!(stats.stall_events, 0);
        assert_eq!(stats.rebuffer_ratio, 0.0);
        // Startup once 2 s are buffered (2 epochs at exactly 1× rate).
        assert_eq!(stats.startup_delay, 2.0);
        assert!(stats.played_seconds > 90.0);
    }

    #[test]
    fn zero_delivery_never_starts() {
        let b = buffer();
        let stats = b.replay(&vec![0.0; 50]);
        assert_eq!(stats.startup_delay, 50.0);
        assert_eq!(stats.played_seconds, 0.0);
        assert_eq!(stats.stall_events, 0);
    }

    #[test]
    fn underrate_delivery_stalls_periodically() {
        let b = buffer();
        // 300 kbps against a 400 kbps stream: drains 0.25 s per epoch.
        let stats = b.replay(&vec![300.0; 400]);
        assert!(stats.stall_events > 5, "expected periodic stalls: {stats:?}");
        assert!(
            stats.rebuffer_ratio > 0.15 && stats.rebuffer_ratio < 0.35,
            "rebuffer ratio {:.3}",
            stats.rebuffer_ratio
        );
    }

    #[test]
    fn overrate_delivery_caps_buffer_and_flows() {
        let b = buffer();
        let stats = b.replay(&vec![800.0; 100]);
        assert_eq!(stats.stall_events, 0);
        // Starts within the first epoch (2 s buffered immediately), and
        // playback drains every epoch from then on.
        assert_eq!(stats.startup_delay, 1.0);
        assert!((stats.played_seconds - 100.0).abs() < 1e-9);
    }

    #[test]
    fn burst_outage_causes_single_stall_and_recovery() {
        let b = buffer();
        let mut rates = vec![800.0; 20]; // build a full 10 s buffer
        rates.extend(vec![0.0; 15]); // outage drains it (10 s) then stalls
        rates.extend(vec![800.0; 30]); // recovery
        let stats = b.replay(&rates);
        assert_eq!(stats.stall_events, 1, "{stats:?}");
        assert!(stats.stalled_seconds >= 4.0);
        assert!(stats.played_seconds > 30.0);
    }

    #[test]
    fn rebuffer_ratio_is_bounded() {
        let b = buffer();
        for pattern in [vec![100.0; 60], vec![390.0; 60], [0.0, 800.0].repeat(30)] {
            let stats = b.replay(&pattern);
            assert!((0.0..=1.0).contains(&stats.rebuffer_ratio), "{stats:?}");
        }
    }

    #[test]
    fn live_default_profile() {
        let b = PlaybackBuffer::live_default(500.0);
        let stats = b.replay(&[500.0; 10]);
        assert_eq!(stats.stall_events, 0);
    }

    #[test]
    #[should_panic(expected = "startup threshold")]
    fn invalid_buffer_sizes_rejected() {
        let _ = PlaybackBuffer::new(400.0, 1.0, 5.0, 2.0);
    }

    #[test]
    fn empty_session_is_degenerate() {
        let stats = buffer().replay(&[]);
        assert_eq!(stats.startup_delay, 0.0);
        assert_eq!(stats.played_seconds, 0.0);
        assert_eq!(stats.rebuffer_ratio, 0.0);
    }
}
