//! Simulation metrics.
//!
//! One [`SimMetrics`] instance accumulates every series the paper's
//! figures need: worst-peer regret (Fig. 1), welfare vs the MDP optimum
//! (Fig. 2), per-helper loads (Fig. 3), per-peer rates and Jain fairness
//! (Fig. 4), and server load against the deficit bounds (Fig. 5) — plus
//! switch counts (the QoE interruption proxy from §III.B) and population
//! size under churn.

use rths_core::ConvergenceSeries;

/// Time-series and summary metrics of one simulation run.
#[derive(Debug, Clone)]
pub struct SimMetrics {
    /// Worst-peer internal regret estimate per epoch.
    pub worst_regret_estimate: ConvergenceSeries,
    /// Worst-peer empirical (true time-averaged) regret per epoch — the
    /// Fig. 1 series.
    pub worst_empirical_regret: ConvergenceSeries,
    /// Total delivered rate per epoch (social welfare, Fig. 2).
    pub welfare: ConvergenceSeries,
    /// Actual server load per epoch (Fig. 5).
    pub server_load: ConvergenceSeries,
    /// Minimum-bandwidth deficit bound per epoch (Fig. 5 reference line).
    pub min_deficit: ConvergenceSeries,
    /// Current-capacity deficit bound per epoch.
    pub current_deficit: ConvergenceSeries,
    /// Number of peers that switched helpers per epoch.
    pub switches: ConvergenceSeries,
    /// Jain fairness index of per-peer delivered rates per epoch (Fig. 4).
    pub jain: ConvergenceSeries,
    /// Online peer count per epoch (constant without churn).
    pub population: ConvergenceSeries,
    /// Per-helper load series (Fig. 3).
    pub helper_loads: Vec<ConvergenceSeries>,
    /// Final summary: time-averaged load per helper.
    pub mean_helper_loads: Vec<f64>,
    /// Final summary: lifetime mean rate of every peer alive at the end.
    pub mean_peer_rates: Vec<f64>,
    /// Final summary: continuity index of every peer alive at the end.
    pub peer_continuity: Vec<f64>,
}

impl SimMetrics {
    /// Creates empty metrics for `num_helpers` helpers.
    pub fn new(num_helpers: usize) -> Self {
        Self {
            worst_regret_estimate: ConvergenceSeries::new("worst_regret_estimate"),
            worst_empirical_regret: ConvergenceSeries::new("worst_empirical_regret"),
            welfare: ConvergenceSeries::new("welfare"),
            server_load: ConvergenceSeries::new("server_load"),
            min_deficit: ConvergenceSeries::new("min_deficit"),
            current_deficit: ConvergenceSeries::new("current_deficit"),
            switches: ConvergenceSeries::new("switches"),
            jain: ConvergenceSeries::new("jain"),
            population: ConvergenceSeries::new("population"),
            helper_loads: (0..num_helpers)
                .map(|j| ConvergenceSeries::new(format!("helper_{j}_load")))
                .collect(),
            mean_helper_loads: vec![0.0; num_helpers],
            mean_peer_rates: Vec::new(),
            peer_continuity: Vec::new(),
        }
    }

    /// Number of epochs recorded so far.
    pub fn epochs(&self) -> usize {
        self.welfare.len()
    }

    /// Jain index over the *time-averaged* per-peer rates — the scalar
    /// headline of Fig. 4 (fairness of long-run allocations rather than
    /// instantaneous shares).
    pub fn long_run_fairness(&self) -> f64 {
        rths_math::stats::jain_index(&self.mean_peer_rates)
    }

    /// Balance of the time-averaged helper loads: coefficient of
    /// variation (0 = perfectly even, Fig. 3's headline).
    pub fn load_balance_cv(&self) -> f64 {
        rths_math::stats::coefficient_of_variation(&self.mean_helper_loads)
    }

    /// Mean per-epoch server load over the final `window` epochs.
    pub fn tail_server_load(&self, window: usize) -> f64 {
        self.server_load.tail_mean(window)
    }

    /// Mean welfare over the final `window` epochs.
    pub fn tail_welfare(&self, window: usize) -> f64 {
        self.welfare.tail_mean(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_metrics_are_empty() {
        let m = SimMetrics::new(3);
        assert_eq!(m.epochs(), 0);
        assert_eq!(m.helper_loads.len(), 3);
        assert_eq!(m.long_run_fairness(), 1.0);
        assert_eq!(m.load_balance_cv(), 0.0);
    }

    #[test]
    fn long_run_fairness_uses_mean_rates() {
        let mut m = SimMetrics::new(1);
        m.mean_peer_rates = vec![100.0, 100.0, 100.0];
        assert!((m.long_run_fairness() - 1.0).abs() < 1e-12);
        m.mean_peer_rates = vec![300.0, 0.0, 0.0];
        assert!((m.long_run_fairness() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn load_balance_cv_detects_imbalance() {
        let mut m = SimMetrics::new(2);
        m.mean_helper_loads = vec![5.0, 5.0];
        assert_eq!(m.load_balance_cv(), 0.0);
        m.mean_helper_loads = vec![9.0, 1.0];
        assert!(m.load_balance_cv() > 0.5);
    }

    #[test]
    fn tail_helpers_delegate_to_series() {
        let mut m = SimMetrics::new(1);
        m.server_load.extend([10.0, 20.0, 30.0, 40.0]);
        m.welfare.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.tail_server_load(2), 35.0);
        assert_eq!(m.tail_welfare(2), 3.5);
    }
}
