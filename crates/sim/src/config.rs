//! Simulation configuration.

use rths_core::{
    ConfigError, Exp3Config, Exp3Learner, HistoryRths, Learner, RecencyMode,
    RegretMatchingLearner, RthsConfig, RthsLearner, SlabLearner,
};
use rths_stoch::bandwidth::{
    BandwidthProcess, ConstantBandwidth, GilbertElliott, MarkovBandwidth, RandomWalkBandwidth,
    RegimeShiftBandwidth, TraceBandwidth,
};
use rths_stoch::markov::MarkovChain;
use rths_stoch::process::ChurnProcess;

use crate::impairment::ImpairmentPlan;

/// Declarative description of one helper's bandwidth process, turned into
/// a live process per helper at system construction.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BandwidthSpec {
    /// The paper's `[700, 800, 900]` sticky Markov chain with the given
    /// stay probability (0.98 reproduces "slowly changing").
    Paper {
        /// Probability of remaining at the current level each epoch.
        stay: f64,
    },
    /// A custom level ladder with a sticky birth–death chain.
    Ladder {
        /// Capacity levels (kbps), ordered low→high.
        levels: Vec<f64>,
        /// Stay probability per epoch.
        stay: f64,
    },
    /// Constant capacity (kbps).
    Constant(f64),
    /// Bounded lazy random walk.
    RandomWalk {
        /// Initial level (kbps).
        initial: f64,
        /// Lower reflecting bound.
        min: f64,
        /// Upper reflecting bound.
        max: f64,
        /// Step magnitude per move.
        step: f64,
        /// Probability of moving each epoch.
        move_prob: f64,
    },
    /// Two-state Gilbert–Elliott burst model.
    GilbertElliott {
        /// Capacity in the good state.
        good: f64,
        /// Capacity in the bad state.
        bad: f64,
        /// P(good → bad) per epoch.
        p_gb: f64,
        /// P(bad → good) per epoch.
        p_bg: f64,
    },
    /// Deterministic regime shift at a fixed epoch (ablation workload).
    RegimeShift {
        /// Capacity before the shift.
        before: f64,
        /// Capacity after the shift.
        after: f64,
        /// Epoch of the shift.
        at: u64,
    },
    /// Replay of a recorded per-epoch capacity trace (loops at the end) —
    /// for driving helpers with measured data.
    Trace(Vec<f64>),
}

impl BandwidthSpec {
    /// Instantiates the live process (using `rng` for any random initial
    /// state).
    pub fn instantiate<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Box<dyn BandwidthProcess> {
        match self {
            BandwidthSpec::Paper { stay } => {
                Box::new(MarkovBandwidth::paper_with_stay(rng, *stay))
            }
            BandwidthSpec::Ladder { levels, stay } => {
                let initial = rng.gen_range(0..levels.len());
                let chain = MarkovChain::sticky_birth_death(levels.len(), *stay, initial);
                Box::new(MarkovBandwidth::new(chain, levels.clone()))
            }
            BandwidthSpec::Constant(level) => Box::new(ConstantBandwidth::new(*level)),
            BandwidthSpec::RandomWalk { initial, min, max, step, move_prob } => {
                Box::new(RandomWalkBandwidth::new(*initial, *min, *max, *step, *move_prob))
            }
            BandwidthSpec::GilbertElliott { good, bad, p_gb, p_bg } => {
                Box::new(GilbertElliott::new(*good, *bad, *p_gb, *p_bg))
            }
            BandwidthSpec::RegimeShift { before, after, at } => {
                Box::new(RegimeShiftBandwidth::new(*before, *after, *at))
            }
            BandwidthSpec::Trace(samples) => Box::new(TraceBandwidth::new(samples.clone())),
        }
    }

    /// Long-run mean capacity if analytically known (calibrates `μ`).
    pub fn mean_level(&self) -> Option<f64> {
        match self {
            BandwidthSpec::Paper { .. } => Some(800.0),
            BandwidthSpec::Ladder { levels, .. } => {
                // Sticky symmetric birth–death: stationary is proportional
                // to [1, 2, 2, …, 2, 1] over interior/boundary states.
                if levels.is_empty() {
                    return None;
                }
                if levels.len() == 1 {
                    return Some(levels[0]);
                }
                let mut weights = vec![2.0; levels.len()];
                weights[0] = 1.0;
                *weights.last_mut().expect("non-empty") = 1.0;
                let total: f64 = weights.iter().sum();
                Some(levels.iter().zip(&weights).map(|(l, w)| l * w / total).sum())
            }
            BandwidthSpec::Constant(level) => Some(*level),
            BandwidthSpec::RandomWalk { min, max, .. } => Some(0.5 * (min + max)),
            BandwidthSpec::GilbertElliott { good, bad, p_gb, p_bg } => {
                let denom = p_gb + p_bg;
                if denom == 0.0 {
                    Some(*good)
                } else {
                    Some(good * p_bg / denom + bad * p_gb / denom)
                }
            }
            BandwidthSpec::RegimeShift { before, after, .. } => Some(0.5 * (before + after)),
            BandwidthSpec::Trace(samples) => {
                if samples.is_empty() {
                    None
                } else {
                    Some(samples.iter().sum::<f64>() / samples.len() as f64)
                }
            }
        }
    }
}

/// Which learning algorithm peers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Algorithm {
    /// Recursive regret tracking (paper Algorithm 2). **Default.**
    #[default]
    Rths,
    /// Uniform-averaging regret matching (ablation baseline).
    RegretMatching,
    /// History-based Algorithm 1 (slow; for validation runs).
    HistoryRths,
    /// EXP3 exponential-weights bandit (external-regret baseline), with
    /// a forgetting factor matched to the RTHS step size.
    Exp3,
}

/// Learner parameters for the peer population.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LearnerSpec {
    /// Algorithm choice.
    pub algorithm: Algorithm,
    /// Step size `ε`.
    pub epsilon: f64,
    /// Exploration `δ`.
    pub delta: f64,
    /// Normalisation `μ`; `None` derives `4 × the per-peer fair-share
    /// rate` (see [`RthsConfig::for_rate_scale`]).
    pub mu: Option<f64>,
    /// Enables conditional-regret normalisation (helper-failure
    /// recovery extension; see `rths_core::RthsConfig::conditional`).
    pub conditional: bool,
}

impl Default for LearnerSpec {
    fn default() -> Self {
        Self {
            algorithm: Algorithm::Rths,
            epsilon: 0.01,
            delta: 0.1,
            mu: None,
            conditional: false,
        }
    }
}

/// A peer-side learner of any supported algorithm.
#[derive(Debug, Clone)]
pub enum AnyLearner {
    /// Recursive RTHS (Algorithm 2).
    Rths(RthsLearner),
    /// Recursive RTHS whose state lives in a shared
    /// [`LearnerSlab`](rths_core::LearnerSlab) slot — the batched
    /// arena layout the reactor backend hands its actors.
    SlabRths(SlabLearner),
    /// Regret-matching baseline.
    Matching(RegretMatchingLearner),
    /// History-based RTHS (Algorithm 1).
    History(HistoryRths),
    /// EXP3 baseline.
    Exp3(Exp3Learner),
}

impl Learner for AnyLearner {
    fn num_actions(&self) -> usize {
        match self {
            AnyLearner::Rths(l) => l.num_actions(),
            AnyLearner::SlabRths(l) => l.num_actions(),
            AnyLearner::Matching(l) => l.num_actions(),
            AnyLearner::History(l) => l.num_actions(),
            AnyLearner::Exp3(l) => l.num_actions(),
        }
    }

    fn probabilities(&self) -> &[f64] {
        match self {
            AnyLearner::Rths(l) => l.probabilities(),
            AnyLearner::SlabRths(l) => l.probabilities(),
            AnyLearner::Matching(l) => l.probabilities(),
            AnyLearner::History(l) => l.probabilities(),
            AnyLearner::Exp3(l) => l.probabilities(),
        }
    }

    fn select_action(&mut self, rng: &mut dyn rand::RngCore) -> usize {
        match self {
            AnyLearner::Rths(l) => l.select_action(rng),
            AnyLearner::SlabRths(l) => l.select_action(rng),
            AnyLearner::Matching(l) => l.select_action(rng),
            AnyLearner::History(l) => l.select_action(rng),
            AnyLearner::Exp3(l) => l.select_action(rng),
        }
    }

    fn observe(&mut self, utility: f64) {
        match self {
            AnyLearner::Rths(l) => l.observe(utility),
            AnyLearner::SlabRths(l) => l.observe(utility),
            AnyLearner::Matching(l) => l.observe(utility),
            AnyLearner::History(l) => l.observe(utility),
            AnyLearner::Exp3(l) => l.observe(utility),
        }
    }

    fn max_regret(&self) -> f64 {
        match self {
            AnyLearner::Rths(l) => l.max_regret(),
            AnyLearner::SlabRths(l) => l.max_regret(),
            AnyLearner::Matching(l) => l.max_regret(),
            AnyLearner::History(l) => l.max_regret(),
            AnyLearner::Exp3(l) => l.max_regret(),
        }
    }

    fn stage(&self) -> u64 {
        match self {
            AnyLearner::Rths(l) => l.stage(),
            AnyLearner::SlabRths(l) => l.stage(),
            AnyLearner::Matching(l) => l.stage(),
            AnyLearner::History(l) => l.stage(),
            AnyLearner::Exp3(l) => l.stage(),
        }
    }

    fn pending_action(&self) -> Option<usize> {
        match self {
            AnyLearner::Rths(l) => l.pending_action(),
            AnyLearner::SlabRths(l) => l.pending_action(),
            AnyLearner::Matching(l) => l.pending_action(),
            AnyLearner::History(l) => l.pending_action(),
            AnyLearner::Exp3(l) => l.pending_action(),
        }
    }

    fn reset_actions(&mut self, num_actions: usize) {
        match self {
            AnyLearner::Rths(l) => l.reset_actions(num_actions),
            AnyLearner::SlabRths(l) => l.reset_actions(num_actions),
            AnyLearner::Matching(l) => l.reset_actions(num_actions),
            AnyLearner::History(l) => l.reset_actions(num_actions),
            AnyLearner::Exp3(l) => l.reset_actions(num_actions),
        }
    }
}

impl LearnerSpec {
    /// The shared [`RthsConfig`] learners of this spec run against for
    /// `num_actions` actions, deriving `μ` from `rate_scale` when unset.
    /// The sharded peer stores build this **once per channel** and keep
    /// only the compact per-peer state per peer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if parameters are invalid.
    pub fn rths_config(
        &self,
        num_actions: usize,
        rate_scale: f64,
    ) -> Result<RthsConfig, ConfigError> {
        let mu = self.mu.unwrap_or(4.0 * rate_scale);
        let recency = match self.algorithm {
            Algorithm::RegretMatching => RecencyMode::Uniform,
            _ => RecencyMode::Exponential,
        };
        RthsConfig::builder(num_actions)
            .epsilon(self.epsilon)
            .delta(self.delta)
            .mu(mu)
            .recency(recency)
            .conditional(self.conditional)
            .build()
    }

    /// Builds a live learner over `num_actions` actions, deriving `μ`
    /// from `rate_scale` — the typical per-peer received rate (fair
    /// share, possibly demand-capped) — when `mu` is unset.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if parameters are invalid.
    pub fn instantiate(
        &self,
        num_actions: usize,
        rate_scale: f64,
    ) -> Result<AnyLearner, ConfigError> {
        let config = self.rths_config(num_actions, rate_scale)?;
        Ok(match self.algorithm {
            Algorithm::Rths => AnyLearner::Rths(RthsLearner::new(config)),
            Algorithm::RegretMatching => {
                AnyLearner::Matching(RegretMatchingLearner::new(config)?)
            }
            Algorithm::HistoryRths => AnyLearner::History(HistoryRths::new(config)),
            Algorithm::Exp3 => AnyLearner::Exp3(Exp3Learner::new(Exp3Config {
                num_actions,
                gamma: self.delta.max(0.01),
                // Rewards are rates; scale by a few fair shares.
                reward_scale: 4.0 * rate_scale,
                forgetting: self.epsilon,
            })),
        })
    }
}

/// Full simulation configuration. Build with [`SimConfig::builder`] or the
/// canned [`Scenario`](crate::Scenario)s.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Initial number of peers.
    pub num_peers: usize,
    /// One bandwidth spec per helper.
    pub helpers: Vec<BandwidthSpec>,
    /// Per-peer streaming demand (kbps); `None` = uncapped utilities
    /// (the paper's default game).
    pub demand: Option<f64>,
    /// Peer churn process.
    pub churn: ChurnProcess,
    /// Learner parameters.
    pub learner: LearnerSpec,
    /// RNG seed; every run with the same config is bit-identical.
    pub seed: u64,
    /// Record the joint action distribution from this epoch onward
    /// (0 = from the start).
    pub record_joint_from: u64,
    /// Record every peer's per-epoch delivered rate (memory: N×epochs
    /// f64s; churn-free runs only). Feeds the playback-buffer QoE
    /// analysis ([`crate::playback`]).
    pub record_peer_rates: bool,
    /// Link impairments (loss, rate limiting, bandwidth/latency
    /// processes); [`ImpairmentPlan::none`] by default. Shared with the
    /// `rths_net` runtimes: `NetConfig::from_sim` inherits this plan, and
    /// all three backends apply it bit-identically.
    pub impairment: ImpairmentPlan,
}

impl SimConfig {
    /// Starts a builder for `num_peers` peers over `helpers`.
    pub fn builder(num_peers: usize, helpers: Vec<BandwidthSpec>) -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig {
                num_peers,
                helpers,
                demand: None,
                churn: ChurnProcess::none(),
                learner: LearnerSpec::default(),
                seed: 0,
                record_joint_from: 0,
                record_peer_rates: false,
                impairment: ImpairmentPlan::none(),
            },
        }
    }

    /// Mean helper capacity across the configured specs (defaults any
    /// unknown mean to 800 kbps, the paper's centre level).
    pub fn mean_capacity(&self) -> f64 {
        if self.helpers.is_empty() {
            return 0.0;
        }
        let total: f64 = self.helpers.iter().map(|h| h.mean_level().unwrap_or(800.0)).sum();
        total / self.helpers.len() as f64
    }

    /// Typical per-peer received rate: the fair share of total mean
    /// helper capacity over the initial population, capped by the demand
    /// if one is set. Used to derive `μ` (see
    /// [`LearnerSpec::instantiate`]).
    pub fn rate_scale(&self) -> f64 {
        let total_cap = self.mean_capacity() * self.helpers.len() as f64;
        let fair = total_cap / self.num_peers.max(1) as f64;
        match self.demand {
            Some(d) => fair.min(d),
            None => fair,
        }
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Sets per-peer streaming demand (kbps).
    pub fn demand(mut self, demand: f64) -> Self {
        self.config.demand = Some(demand);
        self
    }

    /// Sets the churn process.
    pub fn churn(mut self, churn: ChurnProcess) -> Self {
        self.config.churn = churn;
        self
    }

    /// Sets learner parameters.
    pub fn learner(mut self, learner: LearnerSpec) -> Self {
        self.config.learner = learner;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Discards the first `epoch` epochs from the joint distribution.
    pub fn record_joint_from(mut self, epoch: u64) -> Self {
        self.config.record_joint_from = epoch;
        self
    }

    /// Enables per-peer rate-series recording (churn-free runs only).
    pub fn record_peer_rates(mut self, record: bool) -> Self {
        self.config.record_peer_rates = record;
        self
    }

    /// Sets the link-impairment plan (see [`crate::impairment`]).
    pub fn impairment(mut self, plan: ImpairmentPlan) -> Self {
        self.config.impairment = plan;
        self
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    ///
    /// Panics if there are no helpers.
    pub fn build(self) -> SimConfig {
        assert!(!self.config.helpers.is_empty(), "need at least one helper");
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rths_stoch::rng::seeded_rng;

    #[test]
    fn paper_spec_mean_is_800() {
        assert_eq!(BandwidthSpec::Paper { stay: 0.98 }.mean_level(), Some(800.0));
    }

    #[test]
    fn ladder_mean_weights_boundaries_half() {
        // Levels [0, 600]: stationary [1/2, 1/2] for 2 states -> 300.
        let spec = BandwidthSpec::Ladder { levels: vec![0.0, 600.0], stay: 0.9 };
        assert_eq!(spec.mean_level(), Some(300.0));
        // 3 levels [0, 300, 600]: weights [1,2,1]/4 -> 300.
        let spec3 = BandwidthSpec::Ladder { levels: vec![0.0, 300.0, 600.0], stay: 0.9 };
        assert_eq!(spec3.mean_level(), Some(300.0));
    }

    #[test]
    fn ladder_mean_matches_exact_stationary() {
        // Cross-check the [1,2,…,2,1] weight claim against the chain's
        // computed stationary distribution.
        let levels = vec![100.0, 200.0, 300.0, 400.0];
        let chain = MarkovChain::sticky_birth_death(4, 0.9, 0);
        let pi = chain.stationary_distribution().unwrap();
        let exact: f64 = levels.iter().zip(&pi).map(|(l, p)| l * p).sum();
        let spec = BandwidthSpec::Ladder { levels, stay: 0.9 };
        assert!((spec.mean_level().unwrap() - exact).abs() < 1e-9);
    }

    #[test]
    fn instantiate_produces_live_processes() {
        let mut rng = seeded_rng(1);
        let specs = [
            BandwidthSpec::Paper { stay: 0.98 },
            BandwidthSpec::Constant(500.0),
            BandwidthSpec::RandomWalk {
                initial: 400.0,
                min: 100.0,
                max: 900.0,
                step: 50.0,
                move_prob: 0.5,
            },
            BandwidthSpec::GilbertElliott { good: 900.0, bad: 200.0, p_gb: 0.05, p_bg: 0.2 },
            BandwidthSpec::RegimeShift { before: 800.0, after: 400.0, at: 10 },
            BandwidthSpec::Trace(vec![500.0, 700.0, 600.0]),
        ];
        for spec in &specs {
            let mut p = spec.instantiate(&mut rng);
            let before = p.level();
            p.step(&mut rng);
            assert!(p.level().is_finite());
            assert!(before >= p.min_level() && before <= p.max_level());
        }
    }

    #[test]
    fn learner_spec_builds_each_algorithm() {
        for alg in [
            Algorithm::Rths,
            Algorithm::RegretMatching,
            Algorithm::HistoryRths,
            Algorithm::Exp3,
        ] {
            let spec = LearnerSpec { algorithm: alg, ..LearnerSpec::default() };
            let l = spec.instantiate(4, 800.0).unwrap();
            assert_eq!(rths_core::Learner::num_actions(&l), 4);
        }
    }

    #[test]
    fn learner_spec_derives_mu() {
        let spec = LearnerSpec::default();
        let l = spec.instantiate(2, 800.0).unwrap();
        if let AnyLearner::Rths(inner) = &l {
            assert_eq!(inner.config().mu(), 3200.0);
        } else {
            panic!("expected RTHS learner");
        }
    }

    #[test]
    fn builder_defaults() {
        let c = SimConfig::builder(10, vec![BandwidthSpec::Paper { stay: 0.98 }; 4]).build();
        assert_eq!(c.num_peers, 10);
        assert_eq!(c.helpers.len(), 4);
        assert_eq!(c.demand, None);
        assert_eq!(c.seed, 0);
        assert_eq!(c.mean_capacity(), 800.0);
    }

    #[test]
    #[should_panic(expected = "at least one helper")]
    fn empty_helpers_rejected() {
        let _ = SimConfig::builder(10, vec![]).build();
    }
}
