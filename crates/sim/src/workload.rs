//! Workload phases: flash crowds, diurnal cycles, helper failures,
//! popularity shifts, channel surfing.
//!
//! The intro's motivating deployments (PPLive, UUSee) face "time-varying
//! popularity of video channels" — audiences that spike when events start
//! and drain overnight. A [`WorkloadPhase`] describes one such pattern
//! declaratively; [`crate::spec::ScenarioSpec`] chains phases into full
//! scenarios, and the historical free functions ([`run_flash_crowd`],
//! [`run_diurnal`]) remain as thin wrappers over single phases.

use rand::rngs::StdRng;
use rths_stoch::process::FlashCrowd;
use rths_stoch::zipf::Zipf;

use crate::multichannel::MultiChannelSystem;
use crate::system::{Outcome, System};

/// One declarative stage of a scenario's timeline. Time fields (`start`,
/// `end`, `at`) are **relative to the phase's own start**, so phases
/// compose without the author tracking cumulative epochs.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadPhase {
    /// Plain epochs: only the configured churn and bandwidth dynamics.
    Steady {
        /// Phase length in epochs.
        epochs: u64,
    },
    /// A flash crowd: during `[start, end)` (phase-relative) the
    /// configured churn arrival rate is multiplied by `surge` via direct
    /// peer injection.
    FlashCrowd {
        /// Phase length in epochs.
        epochs: u64,
        /// Surge onset, relative to the phase start.
        start: u64,
        /// Surge end (exclusive), relative to the phase start.
        end: u64,
        /// Arrival-rate multiplier during the surge (≥ 1).
        surge: f64,
    },
    /// Sinusoidal diurnal modulation: expected extra arrivals per epoch
    /// follow `amplitude · max(0, sin(2π·epoch/period))`; departures are
    /// left to the configured churn.
    Diurnal {
        /// Phase length in epochs.
        epochs: u64,
        /// Cycle length in epochs.
        period: u64,
        /// Peak extra-arrival rate.
        amplitude: f64,
    },
    /// Sets the listed helpers' online state at the phase start, then
    /// runs plain epochs while the peers *learn* the change (they are
    /// never notified). `online = false` injects a failure, `true` a
    /// recovery.
    HelperFailure {
        /// Phase length in epochs.
        epochs: u64,
        /// Helper indices to flip.
        helpers: Vec<usize>,
        /// Target state for those helpers.
        online: bool,
    },
    /// Multi-channel: at `at` (phase-relative), `count` viewers migrate
    /// `from` one channel `to` another.
    PopularityShift {
        /// Phase length in epochs.
        epochs: u64,
        /// Migration epoch, relative to the phase start.
        at: u64,
        /// Source channel.
        from: usize,
        /// Destination channel.
        to: usize,
        /// Number of viewers to move.
        count: usize,
    },
    /// Multi-channel channel surfing with Zipf drift: every `period`
    /// epochs the popularity ranking rotates by one channel, and `moves`
    /// viewers each hop from a uniformly chosen channel to a
    /// Zipf-sampled destination under the rotated ranking.
    ChannelSurf {
        /// Phase length in epochs.
        epochs: u64,
        /// Epochs between surf events.
        period: u64,
        /// Viewers hopping per event.
        moves: usize,
    },
}

impl WorkloadPhase {
    /// Phase length in epochs.
    pub fn epochs(&self) -> u64 {
        match self {
            WorkloadPhase::Steady { epochs }
            | WorkloadPhase::FlashCrowd { epochs, .. }
            | WorkloadPhase::Diurnal { epochs, .. }
            | WorkloadPhase::HelperFailure { epochs, .. }
            | WorkloadPhase::PopularityShift { epochs, .. }
            | WorkloadPhase::ChannelSurf { epochs, .. } => *epochs,
        }
    }

    /// Whether the phase only makes sense on a
    /// [`MultiChannelSystem`].
    pub fn is_multichannel(&self) -> bool {
        matches!(
            self,
            WorkloadPhase::PopularityShift { .. } | WorkloadPhase::ChannelSurf { .. }
        )
    }

    /// Advances a single-channel [`System`] through this phase.
    ///
    /// # Panics
    ///
    /// Panics on multi-channel phases ([`Self::is_multichannel`]) or on
    /// out-of-range helper indices in `HelperFailure`.
    pub fn run_single(&self, system: &mut System) {
        match self {
            WorkloadPhase::Steady { epochs } => {
                for _ in 0..*epochs {
                    system.step_epoch();
                }
            }
            WorkloadPhase::FlashCrowd { epochs, start, end, surge } => {
                let base = system.epoch();
                let crowd = FlashCrowd::new(base + start, base + end, *surge);
                let until = base + epochs;
                while system.epoch() < until {
                    let factor = crowd.factor_at(system.epoch());
                    if factor > 1.0 {
                        // Surge arrivals beyond the configured churn:
                        // (factor-1)·λ expected extra joins this epoch.
                        let lambda = system.config_arrival_rate() * (factor - 1.0);
                        system.inject_arrivals(lambda);
                    }
                    system.step_epoch();
                }
            }
            WorkloadPhase::Diurnal { epochs, period, amplitude } => {
                assert!(*period > 0, "period must be positive");
                assert!(*amplitude >= 0.0, "amplitude must be non-negative");
                let until = system.epoch() + epochs;
                while system.epoch() < until {
                    let phase = (system.epoch() % period) as f64 / *period as f64;
                    let lambda = amplitude * (std::f64::consts::TAU * phase).sin().max(0.0);
                    if lambda > 0.0 {
                        system.inject_arrivals(lambda);
                    }
                    system.step_epoch();
                }
            }
            WorkloadPhase::HelperFailure { epochs, helpers, online } => {
                for &j in helpers {
                    system.set_helper_online(j, *online);
                }
                for _ in 0..*epochs {
                    system.step_epoch();
                }
            }
            WorkloadPhase::PopularityShift { .. } | WorkloadPhase::ChannelSurf { .. } => {
                panic!("phase {self:?} requires a multi-channel system")
            }
        }
    }

    /// Advances a [`MultiChannelSystem`] through this phase. `channels`
    /// is the system's channel count and `zipf_s` the popularity
    /// exponent for `ChannelSurf`; `rng` drives surf-event sampling (a
    /// dedicated stream, so the system's own streams stay untouched).
    ///
    /// # Panics
    ///
    /// Panics on single-channel-only phases (anything that injects
    /// arrivals or flips helpers).
    pub fn run_multi(
        &self,
        system: &mut MultiChannelSystem,
        channels: usize,
        zipf_s: f64,
        rng: &mut StdRng,
    ) {
        match self {
            WorkloadPhase::Steady { epochs } => {
                let _ = system.run(*epochs);
            }
            WorkloadPhase::PopularityShift { epochs, at, from, to, count } => {
                let at = (*at).min(*epochs);
                let _ = system.run(at);
                system.migrate_viewers(*from, *to, *count);
                let _ = system.run(epochs - at);
            }
            WorkloadPhase::ChannelSurf { epochs, period, moves } => {
                assert!(*period > 0, "period must be positive");
                let zipf = Zipf::new(channels, zipf_s);
                let mut t = 0u64;
                let mut event = 0u64;
                while t < *epochs {
                    let chunk = (*period).min(epochs - t);
                    let _ = system.run(chunk);
                    t += chunk;
                    if t >= *epochs {
                        break;
                    }
                    event += 1;
                    // The ranking rotates by one channel per event; each
                    // hop leaves a uniform channel for a Zipf-ranked one
                    // under the rotated ranking.
                    let rotation = (event as usize) % channels;
                    for _ in 0..*moves {
                        let from = rand::Rng::gen_range(&mut *rng, 0..channels);
                        let to = (zipf.sample(rng) + rotation) % channels;
                        if from != to {
                            system.migrate_viewers(from, to, 1);
                        }
                    }
                }
            }
            _ => panic!("phase {self:?} requires a single-channel system"),
        }
    }
}

/// Runs `system` through a flash crowd: during `[crowd.start, crowd.end)`
/// (absolute epochs) the configured churn arrivals are multiplied by
/// `crowd.surge_factor` via direct peer injection.
///
/// Thin wrapper over [`WorkloadPhase::FlashCrowd`]; returns the
/// cumulative outcome after `epochs` epochs.
pub fn run_flash_crowd(system: &mut System, epochs: u64, crowd: FlashCrowd) -> Outcome {
    let base = system.epoch();
    WorkloadPhase::FlashCrowd {
        epochs,
        // The legacy API takes absolute surge epochs; the phase is
        // relative to its own start.
        start: crowd.start.saturating_sub(base),
        end: crowd.end.saturating_sub(base),
        surge: crowd.surge_factor,
    }
    .run_single(system);
    system.outcome()
}

/// Sinusoidal diurnal modulation (thin wrapper over
/// [`WorkloadPhase::Diurnal`]).
///
/// # Panics
///
/// Panics if `period == 0` or `amplitude < 0`.
pub fn run_diurnal(system: &mut System, epochs: u64, period: u64, amplitude: f64) -> Outcome {
    WorkloadPhase::Diurnal { epochs, period, amplitude }.run_single(system);
    system.outcome()
}

/// A scheduled popularity shift for multi-channel systems: at `epoch`,
/// `count` viewers migrate `from` one channel `to` another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopularityShift {
    /// Epoch of the migration.
    pub epoch: u64,
    /// Source channel.
    pub from: usize,
    /// Destination channel.
    pub to: usize,
    /// Number of viewers to move.
    pub count: usize,
}

/// Runs a multi-channel system through a sequence of popularity shifts.
pub fn run_with_shifts(
    system: &mut MultiChannelSystem,
    epochs: u64,
    shifts: &[PopularityShift],
) -> crate::multichannel::MultiChannelOutcome {
    let end = system.epoch() + epochs;
    let mut pending: Vec<&PopularityShift> =
        shifts.iter().filter(|s| s.epoch >= system.epoch() && s.epoch < end).collect();
    pending.sort_by_key(|s| s.epoch);
    let mut next = 0usize;
    while system.epoch() < end {
        while next < pending.len() && pending[next].epoch == system.epoch() {
            let s = pending[next];
            system.migrate_viewers(s.from, s.to, s.count);
            next += 1;
        }
        let out = system.run(1);
        debug_assert!(out.epochs == system.epoch());
    }
    system.outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BandwidthSpec, SimConfig};
    use crate::multichannel::{AllocationPolicy, MultiChannelConfig};
    use rths_stoch::process::ChurnProcess;
    use rths_stoch::rng::seeded_rng;

    fn churny_system(seed: u64) -> System {
        System::new(
            SimConfig::builder(30, vec![BandwidthSpec::Paper { stay: 0.98 }; 4])
                .churn(ChurnProcess::new(0.5, 0.02))
                .seed(seed)
                .build(),
        )
    }

    #[test]
    fn flash_crowd_grows_population_during_surge() {
        let mut sys = churny_system(1);
        let crowd = FlashCrowd::new(100, 200, 12.0);
        let out = run_flash_crowd(&mut sys, 400, crowd);
        let pops = out.metrics.population.values();
        let before = rths_math::stats::mean(&pops[50..100]);
        let during = rths_math::stats::mean(&pops[150..200]);
        assert!(during > before * 1.3, "no surge visible: before {before}, during {during}");
    }

    #[test]
    fn flash_crowd_wrapper_matches_phase() {
        // The wrapper is a pure re-expression of the phase: identical
        // trajectories, bit for bit.
        let mut via_wrapper = churny_system(7);
        let out_w = run_flash_crowd(&mut via_wrapper, 300, FlashCrowd::new(50, 120, 8.0));
        let mut via_phase = churny_system(7);
        WorkloadPhase::FlashCrowd { epochs: 300, start: 50, end: 120, surge: 8.0 }
            .run_single(&mut via_phase);
        let out_p = via_phase.outcome();
        let bits = |s: &[f64]| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(out_w.metrics.welfare.values()), bits(out_p.metrics.welfare.values()));
        assert_eq!(
            bits(out_w.metrics.population.values()),
            bits(out_p.metrics.population.values())
        );
    }

    #[test]
    fn diurnal_cycles_population() {
        let mut sys = churny_system(2);
        let out = run_diurnal(&mut sys, 600, 200, 3.0);
        let pops = out.metrics.population.values();
        // Population should vary noticeably over the cycle.
        let min = pops[100..].iter().copied().fold(f64::INFINITY, f64::min);
        let max = pops[100..].iter().copied().fold(0.0f64, f64::max);
        assert!(max - min > 10.0, "no diurnal variation: {min}..{max}");
    }

    #[test]
    fn helper_failure_phase_flips_and_runs() {
        let mut sys = churny_system(3);
        WorkloadPhase::HelperFailure { epochs: 20, helpers: vec![0, 2], online: false }
            .run_single(&mut sys);
        assert_eq!(sys.epoch(), 20);
        assert_eq!(sys.capacities()[0], 0.0);
        assert_eq!(sys.capacities()[2], 0.0);
        assert!(sys.capacities()[1] > 0.0);
        WorkloadPhase::HelperFailure { epochs: 10, helpers: vec![0], online: true }
            .run_single(&mut sys);
        assert!(sys.capacities()[0] > 0.0);
    }

    #[test]
    fn popularity_shift_rebalances_channels() {
        let mut sys = MultiChannelSystem::new(MultiChannelConfig::standard(
            3,
            400.0,
            6,
            2,
            60,
            1.0,
            AllocationPolicy::WaterFilling,
            3,
        ));
        let shifts = [PopularityShift { epoch: 100, from: 0, to: 2, count: 10 }];
        let out = run_with_shifts(&mut sys, 300, &shifts);
        assert_eq!(out.epochs, 300);
        // System keeps serving after the shift.
        let tail = out.welfare.tail_mean(50);
        assert!(tail > 0.0);
    }

    #[test]
    fn channel_surf_phase_keeps_serving() {
        let mut sys = MultiChannelSystem::new(MultiChannelConfig::standard(
            3,
            400.0,
            6,
            2,
            60,
            1.2,
            AllocationPolicy::WaterFilling,
            5,
        ));
        let mut rng = seeded_rng(99);
        WorkloadPhase::ChannelSurf { epochs: 120, period: 20, moves: 4 }
            .run_multi(&mut sys, 3, 1.2, &mut rng);
        let out = sys.outcome();
        assert_eq!(out.epochs, 120);
        assert!(out.welfare.tail_mean(30) > 0.0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let mut sys = churny_system(4);
        let _ = run_diurnal(&mut sys, 10, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "requires a multi-channel system")]
    fn multichannel_phase_rejected_on_single() {
        let mut sys = churny_system(5);
        WorkloadPhase::ChannelSurf { epochs: 10, period: 5, moves: 1 }.run_single(&mut sys);
    }
}
