//! Workload generators: flash crowds, diurnal cycles, popularity shifts.
//!
//! The intro's motivating deployments (PPLive, UUSee) face "time-varying
//! popularity of video channels" — audiences that spike when events start
//! and drain overnight. These generators drive the simulators through
//! such patterns so the adaptivity claims can be exercised beyond the
//! paper's stationary-churn setting.

use rths_stoch::process::FlashCrowd;

use crate::multichannel::MultiChannelSystem;
use crate::system::{Outcome, System};

/// Runs `system` through a flash crowd: during `[crowd.start, crowd.end)`
/// the configured churn arrivals are multiplied by `crowd.surge_factor`
/// via direct peer injection.
///
/// Returns the cumulative outcome after `epochs` epochs.
pub fn run_flash_crowd(system: &mut System, epochs: u64, crowd: FlashCrowd) -> Outcome {
    let end = system.epoch() + epochs;
    while system.epoch() < end {
        let factor = crowd.factor_at(system.epoch());
        if factor > 1.0 {
            // Surge arrivals beyond the configured churn: (factor-1)·λ
            // expected extra joins this epoch.
            let lambda = system.config_arrival_rate() * (factor - 1.0);
            system.inject_arrivals(lambda);
        }
        system.step_epoch();
    }
    system.outcome()
}

/// Sinusoidal diurnal modulation: expected extra arrivals per epoch follow
/// `amplitude · max(0, sin(2π·epoch/period))`; departures are left to the
/// configured churn.
pub fn run_diurnal(system: &mut System, epochs: u64, period: u64, amplitude: f64) -> Outcome {
    assert!(period > 0, "period must be positive");
    assert!(amplitude >= 0.0, "amplitude must be non-negative");
    let end = system.epoch() + epochs;
    while system.epoch() < end {
        let phase = (system.epoch() % period) as f64 / period as f64;
        let lambda = amplitude * (std::f64::consts::TAU * phase).sin().max(0.0);
        if lambda > 0.0 {
            system.inject_arrivals(lambda);
        }
        system.step_epoch();
    }
    system.outcome()
}

/// A scheduled popularity shift for multi-channel systems: at `epoch`,
/// `count` viewers migrate `from` one channel `to` another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopularityShift {
    /// Epoch of the migration.
    pub epoch: u64,
    /// Source channel.
    pub from: usize,
    /// Destination channel.
    pub to: usize,
    /// Number of viewers to move.
    pub count: usize,
}

/// Runs a multi-channel system through a sequence of popularity shifts.
pub fn run_with_shifts(
    system: &mut MultiChannelSystem,
    epochs: u64,
    shifts: &[PopularityShift],
) -> crate::multichannel::MultiChannelOutcome {
    let end = system.epoch() + epochs;
    let mut pending: Vec<&PopularityShift> =
        shifts.iter().filter(|s| s.epoch >= system.epoch() && s.epoch < end).collect();
    pending.sort_by_key(|s| s.epoch);
    let mut next = 0usize;
    while system.epoch() < end {
        while next < pending.len() && pending[next].epoch == system.epoch() {
            let s = pending[next];
            system.migrate_viewers(s.from, s.to, s.count);
            next += 1;
        }
        let out = system.run(1);
        debug_assert!(out.epochs == system.epoch());
    }
    system.outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BandwidthSpec, SimConfig};
    use crate::multichannel::{AllocationPolicy, MultiChannelConfig};
    use rths_stoch::process::ChurnProcess;

    fn churny_system(seed: u64) -> System {
        System::new(
            SimConfig::builder(30, vec![BandwidthSpec::Paper { stay: 0.98 }; 4])
                .churn(ChurnProcess::new(0.5, 0.02))
                .seed(seed)
                .build(),
        )
    }

    #[test]
    fn flash_crowd_grows_population_during_surge() {
        let mut sys = churny_system(1);
        let crowd = FlashCrowd::new(100, 200, 12.0);
        let out = run_flash_crowd(&mut sys, 400, crowd);
        let pops = out.metrics.population.values();
        let before = rths_math::stats::mean(&pops[50..100]);
        let during = rths_math::stats::mean(&pops[150..200]);
        assert!(during > before * 1.3, "no surge visible: before {before}, during {during}");
    }

    #[test]
    fn diurnal_cycles_population() {
        let mut sys = churny_system(2);
        let out = run_diurnal(&mut sys, 600, 200, 3.0);
        let pops = out.metrics.population.values();
        // Population should vary noticeably over the cycle.
        let min = pops[100..].iter().copied().fold(f64::INFINITY, f64::min);
        let max = pops[100..].iter().copied().fold(0.0f64, f64::max);
        assert!(max - min > 10.0, "no diurnal variation: {min}..{max}");
    }

    #[test]
    fn popularity_shift_rebalances_channels() {
        let mut sys = MultiChannelSystem::new(MultiChannelConfig::standard(
            3,
            400.0,
            6,
            2,
            60,
            1.0,
            AllocationPolicy::WaterFilling,
            3,
        ));
        let shifts = [PopularityShift { epoch: 100, from: 0, to: 2, count: 10 }];
        let out = run_with_shifts(&mut sys, 300, &shifts);
        assert_eq!(out.epochs, 300);
        // System keeps serving after the shift.
        let tail = out.welfare.tail_mean(50);
        assert!(tail > 0.0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let mut sys = churny_system(4);
        let _ = run_diurnal(&mut sys, 10, 0, 1.0);
    }
}
