//! A minimal TOML reader/writer for [`crate::spec::ScenarioSpec`].
//!
//! The workspace is dependency-free by policy, so scenario files are
//! parsed by this hand-rolled subset of TOML instead of a `toml` crate.
//! Supported syntax (everything the scenario zoo needs):
//!
//! * `key = value` pairs with bare or double-quoted keys;
//! * values: double-quoted strings (with `\"`, `\\`, `\n`, `\t`, `\r`
//!   escapes), booleans, integers, floats, and single-line arrays of
//!   any of these (nested arrays allowed);
//! * `[dotted.table]` headers and `[[dotted.array]]` array-of-tables
//!   headers;
//! * `#` comments (outside strings) and blank lines.
//!
//! Not supported (and not used by any scenario file): multi-line
//! strings/arrays, inline `{...}` tables, dotted keys in assignments,
//! datetimes. The serializer emits only this subset, and emits floats
//! via Rust's shortest-roundtrip `{:?}` so `parse → serialize → parse`
//! is lossless bit-for-bit.

use std::collections::BTreeMap;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array.
    Array(Vec<Value>),
    /// A (sub)table; `BTreeMap` so serialization order is deterministic.
    Table(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly for the i64
    /// range used here).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a table, if it is one.
    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }
}

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based line number of the offending input line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TOML parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, message: impl Into<String>) -> TomlError {
    TomlError { line, message: message.into() }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits a dotted header path into segments (bare keys only).
fn parse_path(raw: &str, line: usize) -> Result<Vec<String>, TomlError> {
    let mut segments = Vec::new();
    for seg in raw.split('.') {
        let seg = seg.trim();
        if seg.is_empty() {
            return Err(err(line, format!("empty path segment in `{raw}`")));
        }
        segments.push(seg.to_string());
    }
    Ok(segments)
}

/// Walks (creating as needed) to the table at `path`, descending into
/// the **last** element of any array-of-tables along the way.
fn nav<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
    line: usize,
) -> Result<&'a mut BTreeMap<String, Value>, TomlError> {
    let mut current = root;
    for seg in path {
        let entry = current.entry(seg.clone()).or_insert_with(|| Value::Table(BTreeMap::new()));
        current = match entry {
            Value::Table(t) => t,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return Err(err(line, format!("`{seg}` is not a table"))),
            },
            _ => return Err(err(line, format!("`{seg}` is not a table"))),
        };
    }
    Ok(current)
}

fn unescape(raw: &str, line: usize) -> Result<String, TomlError> {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            other => return Err(err(line, format!("unsupported escape `\\{other:?}`"))),
        }
    }
    Ok(out)
}

/// Splits the contents of `[...]` on top-level commas (nesting- and
/// string-aware).
fn split_array_items(raw: &str, line: usize) -> Result<Vec<&str>, TomlError> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in raw.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => {
                depth = depth.checked_sub(1).ok_or_else(|| err(line, "unbalanced `]`"))?;
            }
            ',' if !in_str && depth == 0 => {
                items.push(&raw[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_str || depth != 0 {
        return Err(err(line, "unterminated string or bracket in array"));
    }
    // A trailing comma leaves an empty tail (legal TOML); any non-empty
    // tail is the final item.
    let tail = &raw[start..];
    if !tail.trim().is_empty() {
        items.push(tail);
    }
    Ok(items)
}

fn parse_value(raw: &str, line: usize) -> Result<Value, TomlError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(err(line, "missing value"));
    }
    if let Some(inner) = raw.strip_prefix('"') {
        let inner = inner.strip_suffix('"').ok_or_else(|| err(line, "unterminated string"))?;
        return Ok(Value::Str(unescape(inner, line)?));
    }
    if let Some(inner) = raw.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| err(line, "unterminated array"))?;
        let mut items = Vec::new();
        for item in split_array_items(inner, line)? {
            let item = item.trim();
            if item.is_empty() {
                return Err(err(line, "empty array item"));
            }
            items.push(parse_value(item, line)?);
        }
        return Ok(Value::Array(items));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(err(line, format!("unrecognized value `{raw}`")))
}

fn parse_key(raw: &str, line: usize) -> Result<String, TomlError> {
    let raw = raw.trim();
    if let Some(inner) = raw.strip_prefix('"') {
        let inner =
            inner.strip_suffix('"').ok_or_else(|| err(line, "unterminated quoted key"))?;
        return unescape(inner, line);
    }
    if raw.is_empty() || !raw.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(err(line, format!("invalid bare key `{raw}`")));
    }
    Ok(raw.to_string())
}

/// Parses a TOML document into its root table.
///
/// # Errors
///
/// Returns a [`TomlError`] with the offending line on malformed input.
pub fn parse(input: &str) -> Result<BTreeMap<String, Value>, TomlError> {
    let mut root = BTreeMap::new();
    let mut current_path: Vec<String> = Vec::new();
    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[") {
            let inner = inner
                .strip_suffix("]]")
                .ok_or_else(|| err(line_no, "unterminated `[[` header"))?;
            let path = parse_path(inner, line_no)?;
            let (last, parents) =
                path.split_last().ok_or_else(|| err(line_no, "empty header"))?;
            let parent = nav(&mut root, parents, line_no)?;
            let entry = parent.entry(last.clone()).or_insert_with(|| Value::Array(Vec::new()));
            match entry {
                Value::Array(items) => items.push(Value::Table(BTreeMap::new())),
                _ => return Err(err(line_no, format!("`{last}` is not an array of tables"))),
            }
            current_path = path;
            continue;
        }
        if let Some(inner) = line.strip_prefix('[') {
            let inner = inner
                .strip_suffix(']')
                .ok_or_else(|| err(line_no, "unterminated `[` header"))?;
            let path = parse_path(inner, line_no)?;
            // Materialize the table (errors if the path crosses a scalar).
            nav(&mut root, &path, line_no)?;
            current_path = path;
            continue;
        }
        let (key_raw, value_raw) = line
            .split_once('=')
            .ok_or_else(|| err(line_no, format!("expected `key = value`, got `{line}`")))?;
        let key = parse_key(key_raw, line_no)?;
        let value = parse_value(value_raw, line_no)?;
        let table = nav(&mut root, &current_path, line_no)?;
        if table.insert(key.clone(), value).is_some() {
            return Err(err(line_no, format!("duplicate key `{key}`")));
        }
    }
    Ok(root)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

fn write_scalar(out: &mut String, value: &Value) {
    match value {
        Value::Str(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        Value::Int(i) => out.push_str(&i.to_string()),
        // `{:?}` is Rust's shortest round-trip float formatting and
        // always includes a `.` or exponent, so it re-parses as Float.
        Value::Float(f) => out.push_str(&format!("{f:?}")),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_scalar(out, item);
            }
            out.push(']');
        }
        Value::Table(_) => unreachable!("tables are serialized via headers"),
    }
}

fn is_table_array(value: &Value) -> bool {
    matches!(value, Value::Array(items)
        if !items.is_empty() && items.iter().all(|v| matches!(v, Value::Table(_))))
}

fn write_table(out: &mut String, path: &[String], table: &BTreeMap<String, Value>) {
    // Scalars and plain arrays first (they belong to this header)...
    for (key, value) in table {
        if matches!(value, Value::Table(_)) || is_table_array(value) {
            continue;
        }
        out.push_str(key);
        out.push_str(" = ");
        write_scalar(out, value);
        out.push('\n');
    }
    // ...then arrays-of-tables, then subtables.
    for (key, value) in table {
        if let Value::Array(items) = value {
            if !is_table_array(value) {
                continue;
            }
            let mut child_path = path.to_vec();
            child_path.push(key.clone());
            for item in items {
                if let Value::Table(t) = item {
                    out.push('\n');
                    out.push_str(&format!("[[{}]]\n", child_path.join(".")));
                    write_table(out, &child_path, t);
                }
            }
        }
    }
    for (key, value) in table {
        if let Value::Table(t) = value {
            let mut child_path = path.to_vec();
            child_path.push(key.clone());
            out.push('\n');
            out.push_str(&format!("[{}]\n", child_path.join(".")));
            write_table(out, &child_path, t);
        }
    }
}

/// Serializes a root table back to TOML text (the subset [`parse`]
/// accepts; `parse(serialize(t)) == t`).
pub fn serialize(root: &BTreeMap<String, Value>) -> String {
    let mut out = String::new();
    write_table(&mut out, &[], root);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_types() {
        let doc = parse(
            r#"
            name = "flash \"crowd\"" # comment
            peers = 40
            demand = 380.5
            sci = 1e3
            flag = true
            levels = [100, 250.5, 900]
            nested = [[1, 2], [3]]
            "#,
        )
        .unwrap();
        assert_eq!(doc["name"].as_str(), Some("flash \"crowd\""));
        assert_eq!(doc["peers"].as_int(), Some(40));
        assert_eq!(doc["demand"].as_float(), Some(380.5));
        assert_eq!(doc["sci"].as_float(), Some(1000.0));
        assert_eq!(doc["flag"].as_bool(), Some(true));
        let levels = doc["levels"].as_array().unwrap();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].as_float(), Some(100.0));
        assert_eq!(doc["nested"].as_array().unwrap()[0].as_array().unwrap().len(), 2);
    }

    #[test]
    fn parses_tables_and_arrays_of_tables() {
        let doc = parse(
            r#"
            version = 1

            [population]
            peers = 10

            [population.learner]
            algorithm = "rths"

            [[helpers]]
            count = 3
            kind = "paper"

            [[helpers]]
            count = 1
            kind = "constant"
            level = 650.0
            "#,
        )
        .unwrap();
        let pop = doc["population"].as_table().unwrap();
        assert_eq!(pop["peers"].as_int(), Some(10));
        assert_eq!(pop["learner"].as_table().unwrap()["algorithm"].as_str(), Some("rths"));
        let helpers = doc["helpers"].as_array().unwrap();
        assert_eq!(helpers.len(), 2);
        assert_eq!(helpers[1].as_table().unwrap()["level"].as_float(), Some(650.0));
    }

    #[test]
    fn keys_after_table_array_attach_to_last_element() {
        let doc =
            parse("[[phase]]\nkind = \"steady\"\n[[phase]]\nkind = \"diurnal\"\n").unwrap();
        let phases = doc["phase"].as_array().unwrap();
        assert_eq!(phases[0].as_table().unwrap()["kind"].as_str(), Some("steady"));
        assert_eq!(phases[1].as_table().unwrap()["kind"].as_str(), Some("diurnal"));
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (doc, expect_line) in [
            ("peers 40", 1),
            ("\n[unterminated", 2),
            ("x = ", 1),
            ("x = \"open", 1),
            ("x = 1\nx = 2", 2),
            ("x = [1, , 2]", 1),
            ("x = wat", 1),
        ] {
            let e = parse(doc).unwrap_err();
            assert_eq!(e.line, expect_line, "{doc:?} -> {e}");
        }
    }

    #[test]
    fn scalar_path_collision_is_an_error() {
        let e = parse("x = 1\n[x]\ny = 2\n").unwrap_err();
        assert!(e.message.contains("not a table"), "{e}");
    }

    #[test]
    fn round_trips_exactly() {
        let doc = parse(
            r#"
            version = 1
            name = "zoo"
            ratio = 0.30000000000000004
            big = 1e300
            [a]
            x = [1, 2.5, "three", true]
            [[b]]
            y = -7
            [[b]]
            y = 8
            [a.inner]
            z = false
            "#,
        )
        .unwrap();
        let text = serialize(&doc);
        let reparsed = parse(&text).unwrap();
        assert_eq!(doc, reparsed, "serialize/parse not a fixed point:\n{text}");
        // And serialization itself is a fixed point after one cycle.
        assert_eq!(text, serialize(&reparsed));
    }

    #[test]
    fn float_formatting_reparses_as_float() {
        // `{:?}` floats must never look like integers.
        for f in [1.0f64, -0.0, 2e10, 0.1, f64::MAX, f64::MIN_POSITIVE] {
            let mut out = String::new();
            write_scalar(&mut out, &Value::Float(f));
            match parse_value(&out, 1).unwrap() {
                Value::Float(g) => assert_eq!(f.to_bits(), g.to_bits(), "{out}"),
                other => panic!("{out} parsed as {other:?}"),
            }
        }
    }
}
