//! Multi-channel extension (the paper's stated future work).
//!
//! §V: "Our future work is to extend the RTHS to the problem of joint
//! bandwidth allocation in the helper level to the video channels and
//! helper selection in the peer level." This module implements exactly
//! that two-level system:
//!
//! * **Helper level** — each helper serves a subset of channels and
//!   splits its (stochastic) capacity across them per an
//!   [`AllocationPolicy`];
//! * **Peer level** — every viewer runs an RTHS learner whose action set
//!   is the helpers serving *its* channel, with bandit feedback, exactly
//!   as in the single-channel system.
//!
//! Channel popularity is Zipf-distributed by default
//! ([`MultiChannelConfig::zipf_population`]), matching measurements of
//! deployed multi-channel systems.

use rths_core::{ConvergenceSeries, Learner};
use rths_obs::{self as obs, Phase};
use rths_stoch::rng::{entity_rng, seeded_rng};
use rths_stoch::Zipf;

use crate::channel::Channel;
use crate::config::{BandwidthSpec, LearnerSpec};
use crate::helper::{Helper, HelperId};
use crate::server::StreamingServer;
use crate::store::{PeerStore, ShardScratch};

/// How a helper divides its upload capacity among the channels it serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AllocationPolicy {
    /// Equal share per served channel regardless of viewership — the
    /// naive static split.
    EvenSplit,
    /// Proportional to the number of connected viewers per channel
    /// (global even split across viewers).
    LoadProportional,
    /// Demand-proportional water-filling: channel `c` gets
    /// `D_c · min(1, C/ΣD)` where `D_c = n_c · bitrate_c` — delivers the
    /// maximum feasible total. **Default.**
    #[default]
    WaterFilling,
    /// **Learned** (the paper's future work, attempted faithfully): each
    /// helper runs its own RTHS learner over discrete split templates,
    /// scored by its own delivered throughput on a slow timescale (each
    /// template held ~100 epochs so viewers can adapt to it).
    ///
    /// This is a documented **negative result** (EXPERIMENTS.md ext-mc):
    /// selfish throughput feedback under-performs even the static even
    /// split, because a helper's misallocation cost is largely borne by
    /// *other* helpers — viewers migrate away and the explorer's own
    /// throughput barely drops (and under overload every split saturates,
    /// erasing the gradient entirely). Demand-aware allocation needs
    /// demand information; the paper's future work is not achievable by
    /// naively reusing the peer-level machinery at the helper level.
    Learned,
}

impl AllocationPolicy {
    /// Splits capacity `cap` over channels with viewer counts `loads` and
    /// per-viewer demands `bitrates`. Returns per-channel bandwidth.
    ///
    /// # Panics
    ///
    /// Panics for [`AllocationPolicy::Learned`], whose splits are chosen
    /// by per-helper learners inside [`MultiChannelSystem`].
    pub fn split(&self, cap: f64, loads: &[usize], bitrates: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(loads.len());
        self.split_into(cap, loads, bitrates, &mut out);
        out
    }

    /// Allocation-free variant of [`split`](Self::split): appends the
    /// per-channel bandwidths to `out` (cleared first), reusing its
    /// capacity — the per-epoch path of [`MultiChannelSystem`].
    ///
    /// # Panics
    ///
    /// Same contract as [`split`](Self::split).
    pub fn split_into(&self, cap: f64, loads: &[usize], bitrates: &[f64], out: &mut Vec<f64>) {
        assert_eq!(loads.len(), bitrates.len(), "loads/bitrates length mismatch");
        out.clear();
        let k = loads.len();
        if k == 0 {
            return;
        }
        match self {
            AllocationPolicy::Learned => {
                panic!("learned allocation is resolved by MultiChannelSystem, not split()")
            }
            AllocationPolicy::EvenSplit => out.resize(k, cap / k as f64),
            AllocationPolicy::LoadProportional => {
                let total: usize = loads.iter().sum();
                if total == 0 {
                    out.resize(k, cap / k as f64);
                } else {
                    out.extend(loads.iter().map(|&n| cap * n as f64 / total as f64));
                }
            }
            AllocationPolicy::WaterFilling => {
                let total: f64 = loads.iter().zip(bitrates).map(|(&n, &b)| n as f64 * b).sum();
                if total <= 0.0 {
                    out.resize(k, cap / k as f64);
                } else {
                    let scale = (cap / total).min(1.0);
                    out.extend(loads.iter().zip(bitrates).map(|(&n, &b)| n as f64 * b * scale));
                }
            }
        }
    }
}

/// Configuration of the multi-channel system.
#[derive(Debug, Clone)]
pub struct MultiChannelConfig {
    /// The channels (id + bitrate = per-viewer demand).
    pub channels: Vec<Channel>,
    /// Helper bandwidth processes.
    pub helpers: Vec<BandwidthSpec>,
    /// `helper_channels[j]` — channel ids helper `j` serves.
    pub helper_channels: Vec<Vec<usize>>,
    /// Initial viewers per channel.
    pub viewers: Vec<usize>,
    /// Capacity split policy at helpers.
    pub allocation: AllocationPolicy,
    /// Learner parameters for viewers.
    pub learner: LearnerSpec,
    /// Learner parameters for helper-level allocation (only used by
    /// [`AllocationPolicy::Learned`]); `None` derives a spec tuned for
    /// the helper's utility scale (`ε=0.02`, `δ=0.05`, `μ = capacity`).
    pub helper_learner: Option<LearnerSpec>,
    /// RNG seed.
    pub seed: u64,
}

impl MultiChannelConfig {
    /// Builds a standard instance: `k` channels at `bitrate` kbps,
    /// `num_helpers` paper-chain helpers each serving a contiguous block
    /// of channels (wrap-around) of size `channels_per_helper`, and
    /// `num_viewers` viewers allocated by Zipf(`zipf_s`) popularity.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or `channels_per_helper > k`.
    #[allow(clippy::too_many_arguments)]
    pub fn standard(
        k: usize,
        bitrate: f64,
        num_helpers: usize,
        channels_per_helper: usize,
        num_viewers: usize,
        zipf_s: f64,
        allocation: AllocationPolicy,
        seed: u64,
    ) -> Self {
        assert!(k > 0 && num_helpers > 0 && channels_per_helper > 0, "counts must be positive");
        assert!(channels_per_helper <= k, "helpers cannot serve more channels than exist");
        let channels = crate::channel::uniform_channels(k, bitrate);
        let helper_channels: Vec<Vec<usize>> = (0..num_helpers)
            .map(|j| (0..channels_per_helper).map(|o| (j + o) % k).collect())
            .collect();
        let viewers = Self::zipf_population(k, num_viewers, zipf_s);
        Self {
            channels,
            helpers: vec![BandwidthSpec::Paper { stay: 0.98 }; num_helpers],
            helper_channels,
            viewers,
            allocation,
            learner: LearnerSpec::default(),
            helper_learner: None,
            seed,
        }
    }

    /// Splits `total` viewers over `k` channels with Zipf(`s`) popularity.
    pub fn zipf_population(k: usize, total: usize, s: f64) -> Vec<usize> {
        Zipf::new(k, s).allocate(total)
    }

    fn validate(&self) {
        assert!(!self.channels.is_empty(), "need at least one channel");
        assert_eq!(
            self.helpers.len(),
            self.helper_channels.len(),
            "one channel set per helper"
        );
        assert_eq!(self.viewers.len(), self.channels.len(), "one viewer count per channel");
        for (j, chans) in self.helper_channels.iter().enumerate() {
            assert!(!chans.is_empty(), "helper {j} serves no channels");
            assert!(
                chans.iter().all(|&c| c < self.channels.len()),
                "helper {j} serves an unknown channel"
            );
        }
        // Every channel with viewers needs at least one helper.
        for (c, &v) in self.viewers.iter().enumerate() {
            if v > 0 {
                assert!(
                    self.helper_channels.iter().any(|chans| chans.contains(&c)),
                    "channel {c} has viewers but no helper"
                );
            }
        }
    }
}

/// Per-epoch and summary results of a multi-channel run.
#[derive(Debug, Clone)]
pub struct MultiChannelOutcome {
    /// Epochs executed.
    pub epochs: u64,
    /// Total delivered rate per epoch.
    pub welfare: ConvergenceSeries,
    /// Server load per epoch (sum over channels).
    pub server_load: ConvergenceSeries,
    /// Delivered rate per channel (time-averaged).
    pub mean_channel_rates: Vec<f64>,
    /// Continuity index per channel (mean over its viewers).
    pub channel_continuity: Vec<f64>,
    /// Jain fairness across all viewers' lifetime mean rates.
    pub viewer_fairness: f64,
    /// Worst-viewer empirical regret per epoch.
    pub worst_empirical_regret: ConvergenceSeries,
}

/// Mean long-run capacity across helpers (800 kbps fallback).
fn mean_helper_capacity(helpers: &[Helper]) -> f64 {
    if helpers.is_empty() {
        return 800.0;
    }
    helpers.iter().map(|h| h.mean_capacity().unwrap_or(800.0)).sum::<f64>()
        / helpers.len() as f64
}

/// A helper's allocation learner (the future-work extension): an RTHS
/// learner over split templates, run on a slower timescale than the
/// viewers — each chosen template is **held for a window of epochs** so
/// the viewer population can adapt to it before the helper scores it
/// (classic two-timescale learning for coupled games). Feedback is the
/// helper's own mean delivered throughput over the window.
#[derive(Debug)]
struct HelperAllocator {
    learner: crate::config::AnyLearner,
    templates: Vec<Vec<f64>>,
    rng: rand::rngs::StdRng,
    /// Epochs each template is held before being scored.
    window: u32,
    current: usize,
    acc: f64,
    count: u32,
}

impl HelperAllocator {
    /// The template weights to use this epoch (advances the learner at
    /// window boundaries).
    fn weights(&mut self) -> &[f64] {
        if self.count == 0 {
            self.current = self.learner.select_action(&mut self.rng);
        }
        &self.templates[self.current]
    }

    /// Records this epoch's delivered throughput; closes the window when
    /// due.
    fn record(&mut self, delivered: f64) {
        self.acc += delivered;
        self.count += 1;
        if self.count >= self.window {
            self.learner.observe(self.acc / self.count as f64);
            self.acc = 0.0;
            self.count = 0;
        }
    }
}

/// Weight templates over `c` served channels with grid granularity 4:
/// all non-negative integer compositions of 4 into `c` parts, scaled to
/// sum to 1 (e.g. for 2 channels: 100/0, 75/25, 50/50, 25/75, 0/100).
fn split_templates(channels: usize) -> Vec<Vec<f64>> {
    const GRID: usize = 4;
    let mut out = Vec::new();
    let mut stack = vec![0usize; channels];
    fn rec(out: &mut Vec<Vec<f64>>, stack: &mut Vec<usize>, j: usize, left: usize) {
        if j == stack.len() - 1 {
            stack[j] = left;
            out.push(stack.iter().map(|&w| w as f64 / 4.0).collect());
            return;
        }
        for take in 0..=left {
            stack[j] = take;
            rec(out, stack, j + 1, left - take);
        }
    }
    if channels == 0 {
        return out;
    }
    rec(&mut out, &mut stack, 0, GRID);
    out
}

/// Reusable per-epoch buffers, hoisted out of
/// [`MultiChannelSystem::step_epoch`] so steady-state epochs allocate
/// nothing. Matrices over (helper, channel) are stored flattened row-major
/// (`index = helper * num_channels + channel`).
#[derive(Debug, Default)]
struct McScratch {
    /// Local action (index into the channel's helper list) per peer.
    locals: Vec<u32>,
    /// Global helper index per peer.
    globals: Vec<u32>,
    /// Viewers of channel `c` connected to helper `j`, flattened (merged
    /// from the per-shard histograms in shard order).
    loads: Vec<usize>,
    /// Bandwidth helper `j` assigns to channel `c`, flattened.
    bandwidth: Vec<f64>,
    /// Per-helper split inputs/outputs (reused across helpers).
    served_loads: Vec<usize>,
    served_rates: Vec<f64>,
    split: Vec<f64>,
    /// Counterfactual join rates, grouped per channel: channel `c`'s
    /// rates live at `join_rates[join_offsets[c]..join_offsets[c + 1]]`.
    join_offsets: Vec<usize>,
    join_rates: Vec<f64>,
    /// Delivered rate per peer.
    delivered: Vec<f64>,
    /// Unmet demand per peer.
    residuals: Vec<f64>,
    /// Throughput delivered via each helper.
    helper_delivered: Vec<f64>,
    /// Per-shard thread-affine scratch.
    shards: Vec<ShardScratch>,
}

/// The two-level multi-channel system.
pub struct MultiChannelSystem {
    config: MultiChannelConfig,
    /// Per-channel bitrates, cached from `config.channels` (channels are
    /// immutable for the lifetime of a system).
    bitrates: Vec<f64>,
    helpers: Vec<Helper>,
    /// Per-helper allocation learners (only for
    /// [`AllocationPolicy::Learned`]).
    helper_learners: Vec<Option<HelperAllocator>>,
    /// Viewers in the sharded SoA store, grouped by channel at
    /// construction (learner action = index into the channel's helper
    /// list).
    peers: PeerStore,
    /// `channel_helpers[c]` — global helper indices serving channel `c`.
    channel_helpers: Vec<Vec<usize>>,
    server: StreamingServer,
    epoch: u64,
    welfare: ConvergenceSeries,
    server_load: ConvergenceSeries,
    worst_empirical_regret: ConvergenceSeries,
    channel_rate_sums: Vec<f64>,
    scratch: McScratch,
}

impl std::fmt::Debug for MultiChannelSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiChannelSystem")
            .field("epoch", &self.epoch)
            .field("channels", &self.config.channels.len())
            .field("helpers", &self.helpers.len())
            .field("viewers", &self.peers.len())
            .finish()
    }
}

impl MultiChannelSystem {
    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`MultiChannelConfig`] invariants).
    pub fn new(config: MultiChannelConfig) -> Self {
        config.validate();
        let mut master_rng = seeded_rng(config.seed);
        let helpers: Vec<Helper> = config
            .helpers
            .iter()
            .enumerate()
            .map(|(j, spec)| {
                Helper::with_seed(
                    HelperId(j as u32),
                    spec.instantiate(&mut master_rng),
                    config.seed,
                )
            })
            .collect();
        let k = config.channels.len();
        let mut channel_helpers = vec![Vec::new(); k];
        for (j, chans) in config.helper_channels.iter().enumerate() {
            for &c in chans {
                channel_helpers[c].push(j);
            }
        }
        // Rate scale for μ derivation: the system-wide fair share,
        // capped by the smallest channel bitrate.
        let total_cap: f64 = helpers.iter().map(|h| h.mean_capacity().unwrap_or(800.0)).sum();
        let total_viewers: usize = config.viewers.iter().sum();
        let min_bitrate =
            config.channels.iter().map(Channel::bitrate).fold(f64::INFINITY, f64::min);
        let rate_scale = (total_cap / total_viewers.max(1) as f64).min(min_bitrate);
        let actions_per_channel: Vec<usize> =
            channel_helpers.iter().map(|chans| chans.len()).collect();
        let mut peers = PeerStore::new(
            config.seed,
            config.learner.clone(),
            rate_scale,
            &actions_per_channel,
        );
        peers.reserve(total_viewers);
        for (c, &count) in config.viewers.iter().enumerate() {
            for _ in 0..count {
                peers.spawn(c, 0);
            }
        }
        let channel_rate_sums = vec![0.0; k];
        // Helper-level allocation learners (future-work extension): one
        // RTHS learner per helper over its split templates, fed by its own
        // delivered throughput. Stream ids continue after the viewers'.
        let helper_learners = if config.allocation == AllocationPolicy::Learned {
            config
                .helper_channels
                .iter()
                .enumerate()
                .map(|(j, served)| {
                    let templates = split_templates(served.len());
                    let spec = config.helper_learner.clone().unwrap_or(LearnerSpec {
                        epsilon: 0.05,
                        delta: 0.1,
                        mu: Some(mean_helper_capacity(&helpers)),
                        ..LearnerSpec::default()
                    });
                    let learner = spec
                        .instantiate(templates.len(), mean_helper_capacity(&helpers))
                        .expect("validated learner spec");
                    let rng = entity_rng(
                        config.seed,
                        crate::helper::HELPER_STREAM_BASE / 2 + j as u64,
                    );
                    Some(HelperAllocator {
                        learner,
                        templates,
                        rng,
                        window: 100,
                        current: 0,
                        acc: 0.0,
                        count: 0,
                    })
                })
                .collect()
        } else {
            (0..helpers.len()).map(|_| None).collect()
        };
        Self {
            helper_learners,
            bitrates: config.channels.iter().map(Channel::bitrate).collect(),
            config,
            helpers,
            peers,
            channel_helpers,
            server: StreamingServer::new(),
            epoch: 0,
            welfare: ConvergenceSeries::new("welfare"),
            server_load: ConvergenceSeries::new("server_load"),
            worst_empirical_regret: ConvergenceSeries::new("worst_empirical_regret"),
            channel_rate_sums,
            scratch: McScratch::default(),
        }
    }

    /// Viewers currently online.
    pub fn num_viewers(&self) -> usize {
        self.peers.len()
    }

    /// The sharded SoA peer store (stable ids, per-peer accounting).
    pub fn peers(&self) -> &PeerStore {
        &self.peers
    }

    /// Pins the peer-store shard count (tests/benches); `None` restores
    /// the default derived from [`rths_par::threads`]. Results are
    /// bit-identical at any setting.
    pub fn set_shards(&mut self, shards: Option<usize>) {
        self.peers.set_shards(shards);
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Moves `count` viewers from one channel to another (popularity
    /// shift). Viewers keep their identity but restart their learners on
    /// the new channel's helper set.
    ///
    /// # Panics
    ///
    /// Panics if either channel id is unknown.
    pub fn migrate_viewers(&mut self, from: usize, to: usize, count: usize) {
        let k = self.config.channels.len();
        assert!(from < k && to < k, "unknown channel");
        let mut moved = 0;
        for slot in 0..self.peers.len() {
            if moved == count {
                break;
            }
            if self.peers.channel(slot) == from {
                self.peers.set_channel(slot, to);
                moved += 1;
            }
        }
    }

    /// Runs `epochs` epochs, returning cumulative results.
    pub fn run(&mut self, epochs: u64) -> MultiChannelOutcome {
        for _ in 0..epochs {
            self.step_epoch();
        }
        self.outcome()
    }

    fn step_epoch(&mut self) {
        let h = self.helpers.len();
        let k = self.config.channels.len();
        // Observability (bit-exact neutral — see `rths_obs` docs): tag
        // the epoch and span the pipeline phases.
        let ep = self.epoch;
        if obs::enabled() {
            obs::set_epoch(ep);
        }
        let t_epoch = obs::span_start();
        let t = obs::span_start();
        for helper in &mut self.helpers {
            helper.step();
        }
        if let Some(t) = t {
            obs::span_end(Phase::HelperDynamics, ep, t);
        }

        let n = self.peers.len();
        let bitrates = &self.bitrates;
        let channel_helpers = &self.channel_helpers;
        let McScratch {
            locals,
            globals,
            loads,
            bandwidth,
            served_loads,
            served_rates,
            split,
            join_offsets,
            join_rates,
            delivered,
            residuals,
            helper_delivered,
            shards,
        } = &mut self.scratch;

        // Peer-level helper selection (local action index into the
        // channel's helper list), shard-parallel over the peer store:
        // each peer samples from its own RNG stream, so the profile is
        // independent of the shard partition. Each shard accumulates its
        // own loads[j*k + c] histogram (viewers of channel c connected to
        // helper j) and resolves the global helper index into `globals`;
        // the histograms merge in shard order (integer counts).
        // resize without clear: the phase writes every slot of both
        // columns, so no per-epoch memset is needed.
        locals.resize(n, 0);
        globals.resize(n, 0);
        let t = obs::span_start();
        self.peers.choose_phase(
            locals,
            globals,
            loads,
            h * k,
            shards,
            |_, local, c, global_slot, loads| {
                let global = channel_helpers[c as usize][local as usize];
                *global_slot = global as u32;
                loads[global * k + c as usize] += 1;
            },
        );
        if let Some(t) = t {
            obs::span_end(Phase::Choose, ep, t);
        }

        // Helper-level bandwidth allocation across channels.
        let t = obs::span_start();
        bandwidth.clear();
        bandwidth.resize(h * k, 0.0);
        for j in 0..h {
            let served = &self.config.helper_channels[j];
            match &mut self.helper_learners[j] {
                Some(alloc) => {
                    // RTHS at the helper level, on a slower timescale:
                    // the current template is held for a window of epochs
                    // before being scored (see HelperAllocator).
                    let cap = self.helpers[j].capacity();
                    split.clear();
                    split.extend(alloc.weights().iter().map(|w| w * cap));
                }
                None => {
                    served_loads.clear();
                    served_loads.extend(served.iter().map(|&c| loads[j * k + c]));
                    served_rates.clear();
                    served_rates.extend(served.iter().map(|&c| bitrates[c]));
                    self.config.allocation.split_into(
                        self.helpers[j].capacity(),
                        served_loads,
                        served_rates,
                        split,
                    );
                }
            }
            for (idx, &c) in served.iter().enumerate() {
                bandwidth[j * k + c] = split[idx];
            }
        }

        // Counterfactual join rates, grouped per channel: they depend
        // only on the channel (loads count the incumbent peers), so one
        // evaluation serves every viewer of the channel — the sequential
        // engine used to rebuild this vector per peer, per epoch.
        join_offsets.clear();
        join_rates.clear();
        join_offsets.push(0);
        for c in 0..k {
            let d = bitrates[c];
            join_rates.extend(self.channel_helpers[c].iter().map(|&jj| {
                let n_joined = loads[jj * k + c] + 1;
                (bandwidth[jj * k + c] / n_joined as f64).min(d)
            }));
            join_offsets.push(join_rates.len());
        }
        if let Some(t) = t {
            obs::span_end(Phase::RateAlloc, ep, t);
        }

        // Delivery and bandit feedback (shard-parallel). Each peer's rate
        // lands in an index-aligned slot; every order-sensitive float
        // reduction happens below in peer order, so results are
        // bit-identical at any shard count.
        delivered.resize(n, 0.0);
        let t = obs::span_start();
        let (_, worst_emp) = {
            let globals = &*globals;
            let loads = &*loads;
            let bandwidth = &*bandwidth;
            self.peers.observe_phase(
                locals,
                delivered,
                join_offsets,
                join_rates,
                shards,
                // This engine never recorded the learners' internal
                // regret estimates — skip the O(m²) per-peer scan.
                false,
                move |i, _, c| {
                    let c = c as usize;
                    let d = bitrates[c];
                    let global = globals[i] as usize;
                    let n_c = loads[global * k + c];
                    let share =
                        if n_c == 0 { 0.0 } else { bandwidth[global * k + c] / n_c as f64 };
                    let rate = share.min(d);
                    (rate, rate >= d - 1e-9)
                },
            )
        };
        if let Some(t) = t {
            obs::span_end(Phase::Observe, ep, t);
        }
        let mut welfare = 0.0;
        helper_delivered.clear();
        helper_delivered.resize(h, 0.0);
        residuals.clear();
        for (i, &rate) in delivered.iter().enumerate() {
            let c = self.peers.channel(i);
            helper_delivered[globals[i] as usize] += rate;
            welfare += rate;
            self.channel_rate_sums[c] += rate;
            residuals.push((bitrates[c] - rate).max(0.0));
        }
        // Helper-level bandit feedback: each learning helper accumulates
        // its own delivered throughput — purely local information.
        for (slot, &dlv) in self.helper_learners.iter_mut().zip(helper_delivered.iter()) {
            if let Some(alloc) = slot {
                alloc.record(dlv);
            }
        }
        let t = obs::span_start();
        let total_demand: f64 =
            (0..self.peers.len()).map(|i| bitrates[self.peers.channel(i)]).sum();
        let helper_min: f64 = self.helpers.iter().map(Helper::min_capacity).sum();
        let helper_now: f64 = self.helpers.iter().map(Helper::capacity).sum();
        let epoch_result =
            self.server.settle_epoch(residuals, total_demand, helper_min, helper_now);
        if let Some(t) = t {
            obs::span_end(Phase::Settle, ep, t);
        }

        let t = obs::span_start();
        self.welfare.push(welfare);
        self.server_load.push(epoch_result.load);
        self.worst_empirical_regret.push(worst_emp);
        if let Some(t) = t {
            obs::span_end(Phase::Metrics, ep, t);
        }
        if let Some(t) = t_epoch {
            obs::span_end(Phase::Epoch, ep, t);
        }
        self.epoch += 1;
    }

    /// Snapshot of cumulative results.
    pub fn outcome(&self) -> MultiChannelOutcome {
        let k = self.config.channels.len();
        let denom = self.epoch.max(1) as f64;
        let mean_channel_rates: Vec<f64> =
            self.channel_rate_sums.iter().map(|s| s / denom).collect();
        let mut continuity_sums = vec![0.0; k];
        let mut continuity_counts = vec![0usize; k];
        let mut viewer_rates = Vec::with_capacity(self.peers.len());
        for slot in 0..self.peers.len() {
            let c = self.peers.channel(slot);
            continuity_sums[c] += self.peers.continuity(slot);
            continuity_counts[c] += 1;
            viewer_rates.push(self.peers.mean_rate(slot));
        }
        let channel_continuity: Vec<f64> = continuity_sums
            .iter()
            .zip(&continuity_counts)
            .map(|(&s, &c)| if c == 0 { 1.0 } else { s / c as f64 })
            .collect();
        MultiChannelOutcome {
            epochs: self.epoch,
            welfare: self.welfare.clone(),
            server_load: self.server_load.clone(),
            mean_channel_rates,
            channel_continuity,
            viewer_fairness: rths_math::stats::jain_index(&viewer_rates),
            worst_empirical_regret: self.worst_empirical_regret.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn standard(alloc: AllocationPolicy, seed: u64) -> MultiChannelSystem {
        MultiChannelSystem::new(MultiChannelConfig::standard(
            4, 400.0, 8, 2, 80, 1.0, alloc, seed,
        ))
    }

    #[test]
    fn allocation_policies_split_capacity_exactly_or_less() {
        for policy in [
            AllocationPolicy::EvenSplit,
            AllocationPolicy::LoadProportional,
            AllocationPolicy::WaterFilling,
        ] {
            let split = policy.split(900.0, &[3, 1, 0], &[400.0, 400.0, 400.0]);
            let total: f64 = split.iter().sum();
            assert!(total <= 900.0 + 1e-9, "{policy:?} oversubscribed: {total}");
            assert!(split.iter().all(|&b| b >= 0.0));
        }
    }

    #[test]
    fn water_filling_caps_at_demand() {
        let split = AllocationPolicy::WaterFilling.split(10_000.0, &[2, 1], &[400.0, 300.0]);
        // Demands are 800 and 300; capacity is abundant so split == demand.
        assert!((split[0] - 800.0).abs() < 1e-9);
        assert!((split[1] - 300.0).abs() < 1e-9);
    }

    #[test]
    fn water_filling_scales_down_proportionally() {
        let split = AllocationPolicy::WaterFilling.split(550.0, &[2, 1], &[400.0, 300.0]);
        // Total demand 1100, capacity 550 -> scale 0.5.
        assert!((split[0] - 400.0).abs() < 1e-9);
        assert!((split[1] - 150.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_population_sums() {
        let pop = MultiChannelConfig::zipf_population(5, 100, 1.0);
        assert_eq!(pop.iter().sum::<usize>(), 100);
        assert!(pop[0] >= pop[4], "popularity should be rank-ordered: {pop:?}");
    }

    #[test]
    fn system_runs_and_reports() {
        let mut sys = standard(AllocationPolicy::WaterFilling, 1);
        let out = sys.run(200);
        assert_eq!(out.epochs, 200);
        assert_eq!(out.mean_channel_rates.len(), 4);
        assert_eq!(out.channel_continuity.len(), 4);
        assert!(out.viewer_fairness > 0.0 && out.viewer_fairness <= 1.0);
        assert_eq!(sys.num_viewers(), 80);
    }

    #[test]
    fn welfare_bounded_by_capacity_and_demand() {
        let mut sys = standard(AllocationPolicy::WaterFilling, 2);
        let out = sys.run(100);
        let cap_bound: f64 = 8.0 * 900.0;
        let demand_bound: f64 = 80.0 * 400.0;
        for &w in out.welfare.values() {
            assert!(w <= cap_bound.min(demand_bound) + 1e-6);
        }
    }

    #[test]
    fn water_filling_beats_even_split() {
        // The headline of the extension experiment: demand-aware
        // allocation delivers more than the naive static split. The gap
        // widens with popularity skew, so use Zipf(1.5).
        let run = |alloc| {
            let mut sys = MultiChannelSystem::new(MultiChannelConfig::standard(
                4, 400.0, 8, 2, 80, 1.5, alloc, 3,
            ));
            sys.run(1500).welfare.tail_mean(300)
        };
        let tail_even = run(AllocationPolicy::EvenSplit);
        let tail_wf = run(AllocationPolicy::WaterFilling);
        assert!(
            tail_wf > tail_even * 1.02,
            "water-filling {tail_wf} not better than even split {tail_even}"
        );
    }

    #[test]
    fn learned_allocation_runs_and_stays_sane() {
        // The negative-result configuration: learned helper allocation is
        // implemented and stable, but does not beat informed policies (see
        // the AllocationPolicy::Learned docs). We assert sanity and the
        // documented band: within [80%, 110%] of the even split.
        let run = |policy| {
            let mut sys = MultiChannelSystem::new(MultiChannelConfig::standard(
                4, 300.0, 12, 2, 24, 1.5, policy, 13,
            ));
            sys.run(8000).welfare.tail_mean(1500)
        };
        let even = run(AllocationPolicy::EvenSplit);
        let learned = run(AllocationPolicy::Learned);
        assert!(
            learned > 0.8 * even && learned < 1.1 * even,
            "learned {learned:.0} outside the documented band around even {even:.0}"
        );
    }

    #[test]
    fn split_templates_are_distributions() {
        for c in 1..5 {
            let ts = split_templates(c);
            assert!(!ts.is_empty());
            for t in &ts {
                assert_eq!(t.len(), c);
                let sum: f64 = t.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "template {t:?}");
                assert!(t.iter().all(|&w| (0.0..=1.0).contains(&w)));
            }
            // Compositions of 4 into c parts: C(4+c-1, c-1).
            let expected = match c {
                1 => 1,
                2 => 5,
                3 => 15,
                4 => 35,
                _ => unreachable!(),
            };
            assert_eq!(ts.len(), expected);
        }
    }

    #[test]
    #[should_panic(expected = "resolved by MultiChannelSystem")]
    fn split_panics_for_learned() {
        let _ = AllocationPolicy::Learned.split(800.0, &[1, 2], &[300.0, 300.0]);
    }

    #[test]
    fn migration_moves_viewers() {
        let mut sys = standard(AllocationPolicy::WaterFilling, 4);
        let on_channel = |sys: &MultiChannelSystem, c| {
            (0..sys.peers.len()).filter(|&i| sys.peers.channel(i) == c).count()
        };
        let before = on_channel(&sys, 0);
        sys.migrate_viewers(0, 3, 5);
        let after = on_channel(&sys, 0);
        assert_eq!(before - 5, after);
        // System still runs after migration.
        let out = sys.run(50);
        assert_eq!(out.epochs, 50);
    }

    #[test]
    #[should_panic(expected = "has viewers but no helper")]
    fn uncovered_channel_rejected() {
        let mut config = MultiChannelConfig::standard(
            3,
            400.0,
            2,
            1,
            30,
            1.0,
            AllocationPolicy::EvenSplit,
            0,
        );
        // Helpers serve channels 0 and 1 only; channel 2 has viewers.
        config.helper_channels = vec![vec![0], vec![1]];
        let _ = MultiChannelSystem::new(config);
    }
}
