//! Stretch-folded true-regret accounting.
//!
//! Both engines (and `rths_net`'s coordinator machine) report the
//! paper's Fig. 1 series: the worst peer's time-averaged **true regret**
//! against every fixed alternative helper,
//!
//! ```text
//! E_i[k] = Σ_{t : played_i(t) ≠ k} ( jr_t[k] − rate_i(t) )
//! ```
//!
//! where `jr_t[k]` is the channel-global counterfactual *join rate* of
//! helper `k` at epoch `t` and `rate_i(t)` the rate peer `i` actually
//! observed. The historical implementation kept a dense
//! `played × alternative` matrix per peer — `O(n·h²)` memory, rewritten
//! every epoch — which is what capped the reactor's 2×10⁴-actor grid
//! point (~650 MB of regret table alone at 64 helpers; ~3.3 GB at 10⁵
//! actors).
//!
//! # The stretch-folding invariant
//!
//! `jr_t[k]` does not depend on the peer, so the ledger keeps **one**
//! per-channel prefix vector `G_t[k] = Σ_{τ ≤ t} jr_τ[k]` for the whole
//! population. While peer `i` stays on arm `p` (a *stretch* of epochs
//! `[s, t]`), its row accumulates, for every `k ≠ p`,
//!
//! ```text
//! Σ_{τ ∈ [s, t]} (jr_τ[k] − rate_i(τ))  =  (G_t[k] − G_{s−1}[k]) − ΔR_i
//! ```
//!
//! a **prefix difference** plus one scalar (`ΔR_i`: the peer's rate sum
//! over the stretch), while `E_i[p]` does not move at all. So per peer
//! the ledger stores only
//!
//! * the *folded row* `row_i[k]` — `E_i[k]` over all **closed**
//!   stretches (`stride` f64s, `stride = max` channel arity),
//! * the open stretch: current arm, entry epoch, and the rate sum at
//!   entry (`tr_entry`), plus the running rate sum `tr`,
//!
//! and the `O(h)` row write happens **only when a stretch closes** — an
//! arm switch, a channel migration, or the bounded-window fold below.
//! Memory is `O(n·h)` instead of `O(n·h²)`; steady-state epochs write
//! `O(#switches·h)` instead of `O(n·h)`.
//!
//! # Snapshot ring and the retirement rule
//!
//! Closing a stretch entered at epoch `s` needs `G_{s−1}`, so
//! [`RegretLedger::advance_epoch`] snapshots the *exclusive* prefix of
//! each epoch into a ring of [`SNAPSHOT_SLOTS`] slots (slot `e mod 128`
//! holds `G_{e−1}`). The ring stays valid because no open stretch is
//! allowed to grow older than [`STRETCH_WINDOW`] epochs: a record into a
//! stretch at age ≥ 64 first *folds* it (same arm, prefix-difference row
//! write) and re-enters at the current epoch. A slot is therefore dead —
//! retired, free for reuse — as soon as it is more than `STRETCH_WINDOW`
//! epochs old, which the power-of-two ring does implicitly by
//! overwriting; `SNAPSHOT_SLOTS > STRETCH_WINDOW` keeps every slot an
//! open stretch can still reference alive.
//!
//! # Exactness
//!
//! Folding regroups float additions: the dense row added
//! `(jr_τ[k] − rate)` one epoch at a time, the fold adds a prefix
//! difference minus one rate sum. IEEE-754 addition is not associative,
//! but every workload this repository records uses **integral** rates
//! and join-rate sums far below 2⁵³, where f64 arithmetic is exact and
//! any grouping yields identical bits — `fold_matches_dense_bitwise` in
//! this module proves folded == dense bit-for-bit on randomized
//! configurations (switches, window folds, migrations, churn). On
//! non-integral workloads the two groupings may differ in the last ulp;
//! what stays exact *unconditionally* is cross-engine equality, because
//! the simulator and both net backends call the **same**
//! [`record`] function with the same inputs at the same epochs (the
//! `sim_net_equivalence` suite pins that bit-for-bit).
//!
//! # Churn
//!
//! Per-peer state is slot-aligned with the owning store's columns and
//! carries no slot-dependent references (the ring is global, entries are
//! epochs), so removal is a plain order-preserving column compaction:
//! survivors' open stretches stay valid verbatim, and a departed peer's
//! stretch needs no fold — its row leaves the population with it.

use rths_par::{par_sharded, Shard, ShardCols, Strided};

/// Sentinel arm index: no open stretch.
pub const NO_ARM: u32 = u32::MAX;

/// Maximum age (epochs) of an open stretch before a record folds it and
/// re-enters at the current epoch. Bounds how old a snapshot an open
/// stretch can reference.
pub const STRETCH_WINDOW: u64 = 64;

/// Slots in the global snapshot ring (power of two, strictly greater
/// than [`STRETCH_WINDOW`] so every referencable snapshot is alive).
pub const SNAPSHOT_SLOTS: usize = 128;

const SLOT_MASK: u64 = SNAPSHOT_SLOTS as u64 - 1;

/// Stretch-folded true-regret accounting for one peer population.
///
/// Columns are index-aligned with the owning store (or coordinator
/// peer-id order); the global prefix/ring state is shared by every peer.
#[derive(Debug, Clone)]
pub struct RegretLedger {
    /// `offsets[c]..offsets[c + 1]` is channel `c`'s slice of `g`.
    offsets: Vec<usize>,
    /// Row stride: the largest channel arity (min 1), uniform so rows
    /// stay index-aligned under churn compaction.
    stride: usize,
    /// Epochs advanced so far; records target epoch `epochs − 1`.
    epochs: u64,
    /// Inclusive join-rate prefix `G` per channel, concatenated.
    g: Vec<f64>,
    /// Snapshot ring: slot `e & 127` holds the *exclusive* prefix of
    /// epoch `e` (i.e. `G_{e−1}`), laid out like `g`.
    ring: Vec<f64>,
    // === per-peer columns (slot-aligned with the owning store) ===
    /// Open-stretch arm ([`NO_ARM`] when none).
    arm: Vec<u32>,
    /// Open-stretch entry epoch.
    entry: Vec<u64>,
    /// Value of `tr` when the open stretch was entered.
    tr_entry: Vec<f64>,
    /// Total observed rate over all recorded epochs of the current row.
    tr: Vec<f64>,
    /// Recorded epochs of the current row (the time-average divisor).
    stages: Vec<u64>,
    /// Arity the row currently represents (0 before the first record).
    /// The row resets **lazily** at the next record when the arity
    /// changed — the historical semantics, under which a round-trip
    /// channel migration back to the original arity keeps its
    /// accumulated regret history.
    arity: Vec<u32>,
    /// Folded rows, `stride` scalars per peer (trailing slack is zero).
    rows: Vec<f64>,
}

/// The shared (read-only during a phase) half of a split ledger: global
/// prefix, snapshot ring, layout, and the epoch records target.
#[derive(Debug, Clone, Copy)]
pub struct LedgerCtx<'a> {
    offsets: &'a [usize],
    g: &'a [f64],
    ring: &'a [f64],
    /// The epoch being recorded (`epochs − 1`).
    epoch: u64,
}

/// The mutable per-peer half of a split ledger. Implements
/// [`ShardCols`], so a phase can hand each shard the contiguous range of
/// every column alongside the owning store's own columns.
#[derive(Debug)]
pub struct LedgerCols<'a> {
    arm: &'a mut [u32],
    entry: &'a mut [u64],
    tr_entry: &'a mut [f64],
    tr: &'a mut [f64],
    stages: &'a mut [u64],
    arity: &'a mut [u32],
    rows: Strided<'a, f64>,
}

impl ShardCols for LedgerCols<'_> {
    fn shard_split(self, mid: usize) -> (Self, Self) {
        let (arm_a, arm_b) = self.arm.split_at_mut(mid);
        let (entry_a, entry_b) = self.entry.split_at_mut(mid);
        let (tre_a, tre_b) = self.tr_entry.split_at_mut(mid);
        let (tr_a, tr_b) = self.tr.split_at_mut(mid);
        let (st_a, st_b) = self.stages.split_at_mut(mid);
        let (ar_a, ar_b) = self.arity.split_at_mut(mid);
        let (rows_a, rows_b) = self.rows.shard_split(mid);
        (
            LedgerCols {
                arm: arm_a,
                entry: entry_a,
                tr_entry: tre_a,
                tr: tr_a,
                stages: st_a,
                arity: ar_a,
                rows: rows_a,
            },
            LedgerCols {
                arm: arm_b,
                entry: entry_b,
                tr_entry: tre_b,
                tr: tr_b,
                stages: st_b,
                arity: ar_b,
                rows: rows_b,
            },
        )
    }
}

impl RegretLedger {
    /// Creates an empty ledger for peers learning over
    /// `actions_per_channel` helper sets (raw arities; single-channel
    /// engines pass one entry).
    pub fn new(actions_per_channel: &[usize]) -> Self {
        assert!(!actions_per_channel.is_empty(), "need at least one channel");
        let mut offsets = Vec::with_capacity(actions_per_channel.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &m in actions_per_channel {
            total += m;
            offsets.push(total);
        }
        let stride = actions_per_channel.iter().copied().max().unwrap_or(1).max(1);
        Self {
            offsets,
            stride,
            epochs: 0,
            g: vec![0.0; total],
            ring: vec![0.0; SNAPSHOT_SLOTS * total],
            arm: Vec::new(),
            entry: Vec::new(),
            tr_entry: Vec::new(),
            tr: Vec::new(),
            stages: Vec::new(),
            arity: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Row stride (the largest channel arity).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Epochs advanced so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Recorded epochs of peer `slot`'s current row.
    pub fn stages(&self, slot: usize) -> u64 {
        self.stages[slot]
    }

    /// Appends a fresh peer row (call in the same order as the owning
    /// store's spawn).
    pub fn add_peer(&mut self) {
        self.arm.push(NO_ARM);
        self.entry.push(0);
        self.tr_entry.push(0.0);
        self.tr.push(0.0);
        self.stages.push(0);
        self.arity.push(0);
        self.rows.extend(std::iter::repeat_n(0.0, self.stride));
    }

    /// Number of peer rows.
    pub fn len(&self) -> usize {
        self.arm.len()
    }

    /// Whether the ledger holds no peer rows.
    pub fn is_empty(&self) -> bool {
        self.arm.is_empty()
    }

    /// Removes the peers in `slots` (**sorted, unique, in range** — the
    /// owning store validates), compacting every column
    /// order-preservingly. Survivors' open stretches stay valid: the
    /// ledger's global state is slot-independent, so no fold is needed.
    pub fn remove_slots(&mut self, slots: &[u32]) {
        if slots.is_empty() {
            return;
        }
        let n = self.len();
        let stride = self.stride;
        let mut next = 0usize;
        let mut write = 0usize;
        for read in 0..n {
            if next < slots.len() && slots[next] as usize == read {
                next += 1;
                continue;
            }
            if write != read {
                self.arm.swap(write, read);
                self.entry.swap(write, read);
                self.tr_entry.swap(write, read);
                self.tr.swap(write, read);
                self.stages.swap(write, read);
                self.arity.swap(write, read);
                self.rows.copy_within(read * stride..(read + 1) * stride, write * stride);
            }
            write += 1;
        }
        self.arm.truncate(write);
        self.entry.truncate(write);
        self.tr_entry.truncate(write);
        self.tr.truncate(write);
        self.stages.truncate(write);
        self.arity.truncate(write);
        self.rows.truncate(write * stride);
    }

    /// Channel migration hook: folds peer `slot`'s open stretch against
    /// `old_channel`'s prefix (the stretch was accumulated there) and
    /// leaves no stretch open. The row itself is *not* touched — it
    /// resets lazily at the next record if the arity actually changed
    /// (see `arity`), preserving the historical same-arity semantics.
    pub fn migrate(&mut self, slot: usize, old_channel: usize) {
        let arm = self.arm[slot];
        if arm == NO_ARM {
            return;
        }
        let off = self.offsets[old_channel];
        let m = self.offsets[old_channel + 1] - off;
        let entry = self.entry[slot];
        // The stretch covers every recorded epoch up to `epochs − 1`,
        // whose inclusive prefix is the live `g` itself.
        let ring_off = (entry & SLOT_MASK) as usize * self.g.len();
        let snap_entry = &self.ring[ring_off + off..ring_off + off + m];
        let dtr = self.tr[slot] - self.tr_entry[slot];
        let row = &mut self.rows[slot * self.stride..slot * self.stride + m];
        for (k, r) in row.iter_mut().enumerate() {
            if k != arm as usize {
                *r += (self.g[off + k] - snap_entry[k]) - dtr;
            }
        }
        self.arm[slot] = NO_ARM;
    }

    /// Starts an epoch: snapshots the exclusive prefix into the ring and
    /// adds this epoch's join rates to `g`. Must be called exactly once
    /// per epoch, before any [`record`] for it.
    ///
    /// # Panics
    ///
    /// Panics if the join-rate layout does not match the ledger's.
    pub fn advance_epoch(&mut self, join_offsets: &[usize], join_rates: &[f64]) {
        assert_eq!(join_offsets, &self.offsets[..], "join-rate layout drifted");
        assert_eq!(join_rates.len(), self.g.len(), "join-rate length drifted");
        let glen = self.g.len();
        let slot = (self.epochs & SLOT_MASK) as usize * glen;
        self.ring[slot..slot + glen].copy_from_slice(&self.g);
        for (gk, &jr) in self.g.iter_mut().zip(join_rates) {
            *gk += jr;
        }
        self.epochs += 1;
    }

    /// Splits the ledger into its shared context and mutable per-peer
    /// columns for the epoch's record phase.
    ///
    /// # Panics
    ///
    /// Panics if no epoch has been advanced yet.
    pub fn split(&mut self) -> (LedgerCols<'_>, LedgerCtx<'_>) {
        assert!(self.epochs > 0, "record phase before advance_epoch");
        let cols = LedgerCols {
            arm: &mut self.arm,
            entry: &mut self.entry,
            tr_entry: &mut self.tr_entry,
            tr: &mut self.tr,
            stages: &mut self.stages,
            arity: &mut self.arity,
            rows: Strided::new(self.stride, &mut self.rows),
        };
        let ctx = LedgerCtx {
            offsets: &self.offsets,
            g: &self.g,
            ring: &self.ring,
            epoch: self.epochs - 1,
        };
        (cols, ctx)
    }

    /// Peer `slot`'s current time-averaged worst true regret (the same
    /// value the epoch's [`record`] returned), for final reporting.
    pub fn peer_max(&self, slot: usize, channel: usize) -> f64 {
        if self.stages[slot] == 0 {
            return 0.0;
        }
        let row = &self.rows[slot * self.stride..(slot + 1) * self.stride];
        let arm = self.arm[slot];
        let mut max = 0.0f64;
        if arm == NO_ARM {
            for &v in row {
                max = max.max(v);
            }
        } else {
            let off = self.offsets[channel];
            let m = self.offsets[channel + 1] - off;
            let ring_off = (self.entry[slot] & SLOT_MASK) as usize * self.g.len();
            let snap_entry = &self.ring[ring_off + off..ring_off + off + m];
            let dtr = self.tr[slot] - self.tr_entry[slot];
            for (k, &r) in row[..m].iter().enumerate() {
                let v = if k == arm as usize {
                    r
                } else {
                    r + (self.g[off + k] - snap_entry[k]) - dtr
                };
                max = max.max(v);
            }
        }
        max / self.stages[slot] as f64
    }

    /// Runs the coordinator-style record phase over the whole
    /// population: `chosen[i]`/`rates[i]` give peer `i`'s arm and
    /// observed rate (single channel), sharded across `shards`
    /// contiguous ranges with a shard-ordered max reduction. Returns the
    /// epoch's worst time-averaged regret — bit-identical at any shard
    /// count (per-peer values are independent, and the merge is a max
    /// over non-negatives).
    pub fn record_all_max(
        &mut self,
        chosen: &[usize],
        rates: &[f64],
        shards: usize,
        shard_max: &mut Vec<f64>,
    ) -> f64 {
        let n = self.len();
        assert_eq!(chosen.len(), n, "chosen column must be index-aligned");
        assert_eq!(rates.len(), n, "rates column must be index-aligned");
        if n == 0 {
            return 0.0;
        }
        let used = shards.clamp(1, n);
        shard_max.clear();
        shard_max.resize(used, 0.0);
        let (cols, ctx) = self.split();
        par_sharded(n, used, cols, &mut shard_max[..], |shard: Shard, mut cols, max| {
            for i in 0..shard.len() {
                let abs = shard.start + i;
                let v = record(&mut cols, &ctx, i, 0, chosen[abs], rates[abs]);
                *max = max.max(v);
            }
        });
        shard_max.iter().copied().fold(0.0f64, f64::max)
    }
}

/// Records one peer-epoch into a split ledger and returns the peer's
/// updated time-averaged worst true regret. `i` is the index **relative
/// to the shard's column chunk**; `channel` selects the join-rate slice;
/// `played`/`rate` are the peer's arm and observed (demand-capped) rate.
///
/// This is the one function both engines and the net coordinator call —
/// the cross-engine bit-equality of the regret series is structural, not
/// coincidental.
#[inline]
pub fn record(
    cols: &mut LedgerCols<'_>,
    ctx: &LedgerCtx<'_>,
    i: usize,
    channel: usize,
    played: usize,
    rate: f64,
) -> f64 {
    let mut folds = 0u64;
    record_counted(cols, ctx, i, channel, played, rate, &mut folds)
}

/// [`record`] with stretch-fold accounting: `folds` is incremented each
/// time the call closes an open stretch with a row write (an arm switch
/// or a bounded-window fold). The counter is pure observability — it is
/// written only after the arithmetic is fully determined, so traced and
/// untraced runs stay bit-identical.
#[inline]
pub fn record_counted(
    cols: &mut LedgerCols<'_>,
    ctx: &LedgerCtx<'_>,
    i: usize,
    channel: usize,
    played: usize,
    rate: f64,
    folds: &mut u64,
) -> f64 {
    let off = ctx.offsets[channel];
    let m = ctx.offsets[channel + 1] - off;
    let glen = ctx.g.len();
    let row = cols.rows.row(i);
    // Lazy arity reset (historical semantics: an arity change discards
    // the row at the next record, a same-arity migration keeps it).
    if cols.arity[i] != m as u32 {
        if cols.arity[i] != 0 {
            row.fill(0.0);
            cols.stages[i] = 0;
            cols.tr[i] = 0.0;
            cols.tr_entry[i] = 0.0;
            cols.arm[i] = NO_ARM;
        }
        cols.arity[i] = m as u32;
    }
    let e = ctx.epoch;
    // Close the open stretch on an arm switch or when it hits the
    // bounded window (so its entry snapshot can retire from the ring).
    if cols.arm[i] != played as u32 || e - cols.entry[i] >= STRETCH_WINDOW {
        if cols.arm[i] != NO_ARM && e > cols.entry[i] {
            *folds += 1;
            let arm = cols.arm[i] as usize;
            let entry_off = (cols.entry[i] & SLOT_MASK) as usize * glen + off;
            let now_off = (e & SLOT_MASK) as usize * glen + off;
            let snap_entry = &ctx.ring[entry_off..entry_off + m];
            let snap_now = &ctx.ring[now_off..now_off + m];
            let dtr = cols.tr[i] - cols.tr_entry[i];
            for (k, r) in row[..m].iter_mut().enumerate() {
                if k != arm {
                    *r += (snap_now[k] - snap_entry[k]) - dtr;
                }
            }
        }
        cols.arm[i] = played as u32;
        cols.entry[i] = e;
        cols.tr_entry[i] = cols.tr[i];
    }
    cols.tr[i] += rate;
    cols.stages[i] += 1;
    // The epoch's worst entry: the open stretch recovered as a prefix
    // difference on the fly, everything else straight from the row.
    let entry_off = (cols.entry[i] & SLOT_MASK) as usize * glen + off;
    let snap_entry = &ctx.ring[entry_off..entry_off + m];
    let gnow = &ctx.g[off..off + m];
    let dtr = cols.tr[i] - cols.tr_entry[i];
    let mut max = 0.0f64;
    for (k, &r) in row[..m].iter().enumerate() {
        let v = if k == played { r } else { r + (gnow[k] - snap_entry[k]) - dtr };
        max = max.max(v);
    }
    max / cols.stages[i] as f64
}

/// Dense reference implementation of the same accounting: one row per
/// peer updated `O(h)` every epoch. Exists as the oracle the
/// stretch-folding property tests compare against bit-for-bit (on
/// integral workloads, see the module docs) — not for production use.
#[derive(Debug, Clone)]
pub struct DenseRegret {
    offsets: Vec<usize>,
    stride: usize,
    rows: Vec<f64>,
    stages: Vec<u64>,
    arity: Vec<u32>,
}

impl DenseRegret {
    /// Mirrors [`RegretLedger::new`].
    pub fn new(actions_per_channel: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(actions_per_channel.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &m in actions_per_channel {
            total += m;
            offsets.push(total);
        }
        let stride = actions_per_channel.iter().copied().max().unwrap_or(1).max(1);
        Self { offsets, stride, rows: Vec::new(), stages: Vec::new(), arity: Vec::new() }
    }

    /// Mirrors [`RegretLedger::add_peer`].
    pub fn add_peer(&mut self) {
        self.rows.extend(std::iter::repeat_n(0.0, self.stride));
        self.stages.push(0);
        self.arity.push(0);
    }

    /// Mirrors [`RegretLedger::remove_slots`].
    pub fn remove_slots(&mut self, slots: &[u32]) {
        if slots.is_empty() {
            return;
        }
        let n = self.stages.len();
        let stride = self.stride;
        let mut next = 0usize;
        let mut write = 0usize;
        for read in 0..n {
            if next < slots.len() && slots[next] as usize == read {
                next += 1;
                continue;
            }
            if write != read {
                self.stages.swap(write, read);
                self.arity.swap(write, read);
                self.rows.copy_within(read * stride..(read + 1) * stride, write * stride);
            }
            write += 1;
        }
        self.stages.truncate(write);
        self.arity.truncate(write);
        self.rows.truncate(write * stride);
    }

    /// Records one peer-epoch densely and returns the peer's updated
    /// time-averaged worst true regret.
    pub fn record(
        &mut self,
        slot: usize,
        channel: usize,
        played: usize,
        rate: f64,
        join_rates: &[f64],
    ) -> f64 {
        let off = self.offsets[channel];
        let m = self.offsets[channel + 1] - off;
        let jr = &join_rates[off..off + m];
        let row = &mut self.rows[slot * self.stride..(slot + 1) * self.stride];
        if self.arity[slot] != m as u32 {
            if self.arity[slot] != 0 {
                row.fill(0.0);
                self.stages[slot] = 0;
            }
            self.arity[slot] = m as u32;
        }
        for (k, &join) in jr.iter().enumerate() {
            if k != played {
                row[k] += join - rate;
            }
        }
        self.stages[slot] += 1;
        let max = row[..m].iter().copied().fold(0.0f64, f64::max);
        max / self.stages[slot] as f64
    }

    /// Mirrors [`RegretLedger::peer_max`].
    pub fn peer_max(&self, slot: usize) -> f64 {
        if self.stages[slot] == 0 {
            return 0.0;
        }
        let row = &self.rows[slot * self.stride..(slot + 1) * self.stride];
        row.iter().copied().fold(0.0f64, f64::max) / self.stages[slot] as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Drives a folded ledger and the dense oracle through the same
    /// integral-rate trajectory and asserts bitwise equality of every
    /// per-epoch value. Returns the per-epoch maxima for extra checks.
    fn drive(
        seed: u64,
        peers: usize,
        arities: &[usize],
        epochs: u64,
        churn: bool,
        migrate: bool,
    ) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut folded = RegretLedger::new(arities);
        let mut dense = DenseRegret::new(arities);
        let mut channels: Vec<usize> = Vec::new();
        for _ in 0..peers {
            folded.add_peer();
            dense.add_peer();
            channels.push(rng.gen_range(0..arities.len()));
        }
        let offsets: Vec<usize> = {
            let mut o = vec![0usize];
            let mut t = 0;
            for &m in arities {
                t += m;
                o.push(t);
            }
            o
        };
        let total: usize = arities.iter().sum();
        let mut maxima = Vec::new();
        for e in 0..epochs {
            // Integral join rates and rates: exactness territory.
            let join: Vec<f64> = (0..total).map(|_| rng.gen_range(0..900) as f64).collect();
            folded.advance_epoch(&offsets, &join);
            let (mut cols, ctx) = folded.split();
            let mut epoch_max = 0.0f64;
            for (i, &c) in channels.iter().enumerate() {
                let m = arities[c];
                let played = rng.gen_range(0..m);
                let rate = rng.gen_range(0..800) as f64;
                let f = record(&mut cols, &ctx, i, c, played, rate);
                let d = dense.record(i, c, played, rate, &join);
                assert_eq!(
                    f.to_bits(),
                    d.to_bits(),
                    "peer {i} diverged at epoch {e}: folded {f} vs dense {d}"
                );
                epoch_max = epoch_max.max(f);
            }
            maxima.push(epoch_max);
            for (i, &c) in channels.iter().enumerate() {
                let f = folded.peer_max(i, c);
                let d = dense.peer_max(i);
                assert_eq!(f.to_bits(), d.to_bits(), "peer_max {i} diverged at epoch {e}");
            }
            if migrate && !channels.is_empty() && rng.gen_range(0..4) == 0 {
                let slot = rng.gen_range(0..channels.len());
                let to = rng.gen_range(0..arities.len());
                folded.migrate(slot, channels[slot]);
                channels[slot] = to;
                // The dense oracle needs no hook: its lazy reset keys on
                // the arity seen at the next record, like the ledger's.
            }
            if churn && rng.gen_range(0..5) == 0 {
                if channels.len() > 2 && rng.gen_bool(0.5) {
                    let slot = rng.gen_range(0..channels.len()) as u32;
                    folded.remove_slots(&[slot]);
                    dense.remove_slots(&[slot]);
                    channels.remove(slot as usize);
                } else {
                    folded.add_peer();
                    dense.add_peer();
                    channels.push(rng.gen_range(0..arities.len()));
                }
            }
        }
        maxima
    }

    #[test]
    fn fold_matches_dense_bitwise() {
        // Randomized configs: single- and multi-channel, mixed arities.
        // Epoch counts cross STRETCH_WINDOW so forced folds and ring
        // wraparound (epochs > SNAPSHOT_SLOTS) are exercised.
        drive(1, 6, &[4], 200, false, false);
        drive(2, 5, &[3, 5, 2], 180, false, false);
        drive(3, 8, &[2], 150, false, false);
    }

    #[test]
    fn fold_matches_dense_under_churn_and_migration() {
        drive(11, 6, &[3, 4], 220, true, true);
        drive(12, 4, &[5, 5], 160, true, false);
        drive(13, 7, &[2, 6, 3], 200, false, true);
    }

    #[test]
    fn record_all_max_is_shard_count_invariant() {
        let run = |shards: usize| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(77);
            let mut ledger = RegretLedger::new(&[5]);
            for _ in 0..90 {
                ledger.add_peer();
            }
            let mut shard_max = Vec::new();
            let mut out = Vec::new();
            for _ in 0..120 {
                let join: Vec<f64> = (0..5).map(|_| rng.gen_range(0..900) as f64).collect();
                let chosen: Vec<usize> = (0..90).map(|_| rng.gen_range(0..5)).collect();
                let rates: Vec<f64> = (0..90).map(|_| rng.gen_range(0..800) as f64).collect();
                ledger.advance_epoch(&[0, 5], &join);
                out.push(
                    ledger.record_all_max(&chosen, &rates, shards, &mut shard_max).to_bits(),
                );
            }
            out
        };
        let base = run(1);
        for shards in [2usize, 4, 7] {
            assert_eq!(run(shards), base, "diverged at {shards} shards");
        }
    }

    #[test]
    fn long_stretches_survive_ring_wraparound() {
        // One peer pinned to one arm for 500 epochs: forced folds every
        // STRETCH_WINDOW keep the entry snapshot inside the ring while
        // the ring wraps ~4×; the dense oracle stays bit-equal.
        let mut folded = RegretLedger::new(&[3]);
        let mut dense = DenseRegret::new(&[3]);
        folded.add_peer();
        dense.add_peer();
        for e in 0..500u64 {
            let join = [((e * 7) % 11) as f64, ((e * 3) % 13) as f64, 5.0];
            folded.advance_epoch(&[0, 3], &join);
            let (mut cols, ctx) = folded.split();
            let f = record(&mut cols, &ctx, 0, 0, 1, ((e * 5) % 9) as f64);
            let d = dense.record(0, 0, 1, ((e * 5) % 9) as f64, &join);
            assert_eq!(f.to_bits(), d.to_bits(), "diverged at epoch {e}");
        }
    }

    #[test]
    fn empty_ledger_is_inert() {
        let mut ledger = RegretLedger::new(&[4]);
        assert!(ledger.is_empty());
        ledger.advance_epoch(&[0, 4], &[1.0, 2.0, 3.0, 4.0]);
        let mut shard_max = Vec::new();
        assert_eq!(ledger.record_all_max(&[], &[], 4, &mut shard_max), 0.0);
        ledger.remove_slots(&[]);
    }

    #[test]
    #[should_panic(expected = "layout drifted")]
    fn advance_rejects_layout_drift() {
        let mut ledger = RegretLedger::new(&[4]);
        ledger.advance_epoch(&[0, 3], &[1.0, 2.0, 3.0]);
    }
}
