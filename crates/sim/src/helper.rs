//! Helper nodes.

use rand::rngs::StdRng;
use rths_stoch::bandwidth::BandwidthProcess;

/// Derivation offset for per-helper RNG streams (see
/// [`rths_stoch::rng::entity_rng`]); keeps helper randomness disjoint
/// from peer streams so the threaded runtime (`rths-net`) reproduces the
/// simulator bit-for-bit.
pub const HELPER_STREAM_BASE: u64 = 0x8000_0000_0000_0000;

/// Stable identifier of a helper within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HelperId(pub u32);

impl std::fmt::Display for HelperId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "helper-{}", self.0)
    }
}

/// A helper node: a peer with surplus upload bandwidth acting as a
/// micro-server. Its capacity follows a [`BandwidthProcess`]; each epoch
/// the capacity is split evenly across connected peers (§III.A). Owns a
/// private RNG stream so that helper dynamics are independent of peer
/// population changes.
pub struct Helper {
    id: HelperId,
    process: Box<dyn BandwidthProcess>,
    rng: StdRng,
    capacity: f64,
    online: bool,
}

impl std::fmt::Debug for Helper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Helper")
            .field("id", &self.id)
            .field("capacity", &self.capacity)
            .field("online", &self.online)
            .finish()
    }
}

impl Helper {
    /// Creates a helper driven by `process` with its own RNG stream.
    pub fn new(id: HelperId, process: Box<dyn BandwidthProcess>, rng: StdRng) -> Self {
        let capacity = process.level();
        Self { id, process, rng, capacity, online: true }
    }

    /// Convenience: derives the helper's RNG stream from the simulation
    /// seed and helper index.
    pub fn with_seed(id: HelperId, process: Box<dyn BandwidthProcess>, sim_seed: u64) -> Self {
        let rng = rths_stoch::rng::entity_rng(sim_seed, HELPER_STREAM_BASE + id.0 as u64);
        Self::new(id, process, rng)
    }

    /// Stable id.
    pub fn id(&self) -> HelperId {
        self.id
    }

    /// Current upload capacity (kbps); 0 while offline.
    pub fn capacity(&self) -> f64 {
        if self.online {
            self.capacity
        } else {
            0.0
        }
    }

    /// Smallest capacity the underlying process can produce (used for the
    /// minimum-bandwidth-deficit bound of Fig. 5).
    pub fn min_capacity(&self) -> f64 {
        self.process.min_level()
    }

    /// Largest possible capacity.
    pub fn max_capacity(&self) -> f64 {
        self.process.max_level()
    }

    /// Long-run mean capacity, if the process knows it.
    pub fn mean_capacity(&self) -> Option<f64> {
        self.process.mean_level()
    }

    /// Whether the helper is currently serving.
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Takes the helper offline (failure injection); capacity reads 0.
    pub fn set_online(&mut self, online: bool) {
        self.online = online;
    }

    /// Advances the bandwidth process one epoch and refreshes the cached
    /// capacity.
    pub fn step(&mut self) {
        self.process.step(&mut self.rng);
        self.capacity = self.process.level();
    }

    /// Per-peer rate when `load` peers are connected (even split, 0 for an
    /// empty helper or while offline).
    pub fn share(&self, load: usize) -> f64 {
        if load == 0 || !self.online {
            0.0
        } else {
            self.capacity() / load as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rths_stoch::bandwidth::ConstantBandwidth;
    use rths_stoch::rng::seeded_rng;

    fn helper(cap: f64) -> Helper {
        Helper::with_seed(HelperId(1), Box::new(ConstantBandwidth::new(cap)), 0)
    }

    #[test]
    fn share_divides_capacity() {
        let h = helper(800.0);
        assert_eq!(h.share(0), 0.0);
        assert_eq!(h.share(1), 800.0);
        assert_eq!(h.share(4), 200.0);
    }

    #[test]
    fn offline_helper_serves_nothing() {
        let mut h = helper(800.0);
        h.set_online(false);
        assert_eq!(h.capacity(), 0.0);
        assert_eq!(h.share(3), 0.0);
        assert!(!h.is_online());
        h.set_online(true);
        assert_eq!(h.capacity(), 800.0);
    }

    #[test]
    fn step_tracks_process() {
        let mut rng = seeded_rng(1);
        let mut h = Helper::with_seed(
            HelperId(0),
            Box::new(rths_stoch::bandwidth::MarkovBandwidth::paper_default(&mut rng)),
            7,
        );
        for _ in 0..100 {
            h.step();
            assert!([700.0, 800.0, 900.0].contains(&h.capacity()));
        }
        assert_eq!(h.min_capacity(), 700.0);
        assert_eq!(h.max_capacity(), 900.0);
        assert_eq!(h.mean_capacity(), Some(800.0));
    }

    #[test]
    fn display_and_debug() {
        let h = helper(100.0);
        assert_eq!(h.id().to_string(), "helper-1");
        assert!(format!("{h:?}").contains("capacity"));
    }
}
