//! Failure schedules and churn orchestration helpers.
//!
//! Peer churn itself is part of the engine ([`crate::System`] applies the
//! configured [`ChurnProcess`](rths_stoch::process::ChurnProcess) every
//! epoch). This module adds *planned* events for ablation experiments:
//! helper outages/recoveries at fixed epochs, applied while a system runs.

use crate::system::System;

/// One planned helper availability change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FailureEvent {
    /// Epoch at which the event fires.
    pub epoch: u64,
    /// Index of the helper affected.
    pub helper: usize,
    /// `false` = outage, `true` = recovery.
    pub online: bool,
}

/// An ordered schedule of helper failures/recoveries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FailureSchedule {
    events: Vec<FailureEvent>,
}

impl FailureSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an outage at `epoch` for `helper`.
    #[must_use]
    pub fn fail_at(mut self, epoch: u64, helper: usize) -> Self {
        self.events.push(FailureEvent { epoch, helper, online: false });
        self.sort();
        self
    }

    /// Adds a recovery at `epoch` for `helper`.
    #[must_use]
    pub fn recover_at(mut self, epoch: u64, helper: usize) -> Self {
        self.events.push(FailureEvent { epoch, helper, online: true });
        self.sort();
        self
    }

    fn sort(&mut self) {
        // Stable sort: events sharing an epoch keep their insertion
        // order, so e.g. an outage followed by a recovery of the same
        // helper in one epoch nets out to "online" (see
        // `same_epoch_events_apply_in_insertion_order`).
        self.events.sort_by_key(|e| e.epoch);
    }

    /// The scheduled events in epoch order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Runs `system` for `epochs` epochs, firing scheduled events at their
    /// epochs, and returns the cumulative outcome.
    ///
    /// Events whose epoch falls outside `[system.epoch(), system.epoch()
    /// + epochs)` are ignored.
    pub fn run(&self, system: &mut System, epochs: u64) -> crate::system::Outcome {
        let end = system.epoch() + epochs;
        let mut pending: std::collections::VecDeque<&FailureEvent> =
            self.events.iter().filter(|e| e.epoch >= system.epoch() && e.epoch < end).collect();
        while system.epoch() < end {
            while let Some(&ev) = pending.front() {
                if ev.epoch == system.epoch() {
                    system.set_helper_online(ev.helper, ev.online);
                    pending.pop_front();
                } else {
                    break;
                }
            }
            system.step_epoch();
        }
        system.outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BandwidthSpec, SimConfig};

    fn system(seed: u64) -> System {
        System::new(
            SimConfig::builder(8, vec![BandwidthSpec::Constant(800.0); 2]).seed(seed).build(),
        )
    }

    #[test]
    fn schedule_orders_events() {
        let s = FailureSchedule::new().fail_at(50, 1).recover_at(20, 0).fail_at(10, 0);
        let epochs: Vec<u64> = s.events().iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![10, 20, 50]);
    }

    #[test]
    fn outage_and_recovery_fire() {
        let mut sys = system(1);
        let schedule = FailureSchedule::new().fail_at(100, 0).recover_at(200, 0);
        let out = schedule.run(&mut sys, 300);
        assert_eq!(out.epochs, 300);
        // During the outage, helper 0 delivered nothing: welfare dips to
        // at most helper 1's capacity.
        let during: Vec<f64> = out.metrics.welfare.values()[120..200].to_vec();
        for w in during {
            assert!(w <= 800.0 + 1e-9, "welfare {w} during outage");
        }
        // After recovery, welfare can exceed a single helper again.
        let after_max =
            out.metrics.welfare.values()[220..].iter().copied().fold(0.0f64, f64::max);
        assert!(after_max > 800.0, "no recovery: max welfare {after_max}");
    }

    #[test]
    fn same_epoch_events_apply_in_insertion_order() {
        // Outage + recovery of the same helper in one epoch: both fire,
        // in insertion order, before the epoch steps — the helper serves
        // the whole run. Reversed insertion nets out to an outage.
        let mut sys = system(4);
        let schedule = FailureSchedule::new().fail_at(10, 0).recover_at(10, 0);
        let epochs: Vec<u64> = schedule.events().iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![10, 10]);
        let out = schedule.run(&mut sys, 50);
        assert!(sys.helpers()[0].is_online(), "recovery should have fired last");
        // Both constant-capacity helpers stayed up: welfare never drops
        // to a single helper's ceiling for lack of capacity.
        assert_eq!(out.epochs, 50);

        let mut reversed_sys = system(4);
        let reversed = FailureSchedule::new().recover_at(10, 0).fail_at(10, 0);
        let _ = reversed.run(&mut reversed_sys, 50);
        assert!(
            !reversed_sys.helpers()[0].is_online(),
            "outage inserted last should win the epoch"
        );
    }

    #[test]
    fn same_epoch_order_survives_later_insertions() {
        // Interleaving events at other epochs re-sorts the vector; the
        // stable sort must keep the same-epoch pair in insertion order.
        let s = FailureSchedule::new()
            .fail_at(20, 1)
            .recover_at(20, 1)
            .fail_at(5, 0)
            .recover_at(30, 0);
        let got: Vec<(u64, bool)> = s.events().iter().map(|e| (e.epoch, e.online)).collect();
        assert_eq!(got, vec![(5, false), (20, false), (20, true), (30, true)]);
    }

    #[test]
    fn events_outside_window_ignored() {
        let mut sys = system(2);
        let schedule = FailureSchedule::new().fail_at(1000, 0);
        let out = schedule.run(&mut sys, 100);
        assert_eq!(out.epochs, 100);
        // Helper never failed: every epoch delivers from both helpers
        // whenever both are loaded.
        assert!(sys.helpers()[0].is_online());
    }

    #[test]
    fn empty_schedule_is_plain_run() {
        let mut sys = system(3);
        let out = FailureSchedule::new().run(&mut sys, 50);
        assert_eq!(out.epochs, 50);
    }
}
