//! One-shot generator for the checked-in scenario zoo: builds each spec
//! with the typed builder and writes its canonical TOML rendering to
//! `scenarios/`. Re-run after schema changes to refresh the files.
//!
//! Run with: `cargo run -p rths_sim --example gen_scenarios`

use rths_sim::{BandwidthSpec, ImpairmentPlan, ScenarioSpec, WorkloadPhase};

fn paper_helpers() -> Vec<(usize, BandwidthSpec)> {
    vec![(4, BandwidthSpec::Paper { stay: 0.98 })]
}

fn specs() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::builder("flash_crowd_spike")
            .description(
                "A single sharp flash crowd: arrivals surge 8x for 30 epochs, then the \
                 population drains back through normal churn.",
            )
            .seed(2014)
            .single(12, paper_helpers())
            .demand(350.0)
            .churn(0.3, 0.02)
            .phase(WorkloadPhase::Steady { epochs: 80 })
            .phase(WorkloadPhase::FlashCrowd { epochs: 60, start: 10, end: 40, surge: 8.0 })
            .phase(WorkloadPhase::Steady { epochs: 80 })
            .build()
            .expect("flash_crowd_spike"),
        ScenarioSpec::builder("flash_crowd_double")
            .description(
                "Two flash crowds in quick succession: the second hits before the first \
                 wave has churned out, stressing re-adaptation from a crowded state.",
            )
            .seed(2718)
            .single(10, paper_helpers())
            .demand(350.0)
            .churn(0.25, 0.03)
            .phase(WorkloadPhase::Steady { epochs: 50 })
            .phase(WorkloadPhase::FlashCrowd { epochs: 50, start: 5, end: 25, surge: 6.0 })
            .phase(WorkloadPhase::FlashCrowd { epochs: 50, start: 10, end: 30, surge: 6.0 })
            .phase(WorkloadPhase::Steady { epochs: 60 })
            .build()
            .expect("flash_crowd_double"),
        ScenarioSpec::builder("channel_surfing")
            .description(
                "Multi-channel Zipf popularity drift: viewers surf every 15 epochs under \
                 a rotating ranking, with one mass migration mid-run.",
            )
            .seed(1337)
            .multichannel(5, 400.0, 8, 2, 40, 1.1)
            .phase(WorkloadPhase::Steady { epochs: 60 })
            .phase(WorkloadPhase::ChannelSurf { epochs: 120, period: 15, moves: 3 })
            .phase(WorkloadPhase::PopularityShift {
                epochs: 60,
                at: 10,
                from: 0,
                to: 4,
                count: 8,
            })
            .build()
            .expect("channel_surfing"),
        ScenarioSpec::builder("helper_cascade")
            .description(
                "Correlated helper-failure cascade: helpers fail one after another, \
                 then all recover at once; peers must relearn each regime unannounced.",
            )
            .seed(4242)
            .single(
                14,
                vec![
                    (2, BandwidthSpec::Paper { stay: 0.98 }),
                    (2, BandwidthSpec::Constant(750.0)),
                ],
            )
            .demand(350.0)
            .phase(WorkloadPhase::Steady { epochs: 60 })
            .phase(WorkloadPhase::HelperFailure { epochs: 50, helpers: vec![0], online: false })
            .phase(WorkloadPhase::HelperFailure { epochs: 50, helpers: vec![2], online: false })
            .phase(WorkloadPhase::HelperFailure {
                epochs: 80,
                helpers: vec![0, 2],
                online: true,
            })
            .build()
            .expect("helper_cascade"),
        ScenarioSpec::builder("diurnal")
            .description(
                "A diurnal audience curve: sinusoidal arrival waves over several \
                 day-cycles on top of steady departure churn.",
            )
            .seed(8601)
            .single(8, paper_helpers())
            .demand(300.0)
            .churn(0.1, 0.04)
            .phase(WorkloadPhase::Diurnal { epochs: 240, period: 60, amplitude: 1.5 })
            .build()
            .expect("diurnal"),
        ScenarioSpec::builder("bursty_loss_stress")
            .description(
                "Gilbert-Elliott bursty loss plus token-bucket policing, a Markov link \
                 bandwidth, extra latency, and jitter — the full impairment stack.",
            )
            .seed(6060)
            .single(12, paper_helpers())
            .demand(350.0)
            .impairment(
                ImpairmentPlan::builder(99)
                    .gilbert_loss(0.04, 0.3, 0.8, 0.01)
                    .jitter_us(150)
                    .token_bucket(500.0, 1000.0)
                    .link_bandwidth(vec![300.0, 600.0, 900.0], 0.92)
                    .latency(vec![1, 2, 4], 0.85)
                    .build()
                    .expect("bursty impairment plan"),
            )
            .phase(WorkloadPhase::Steady { epochs: 200 })
            .build()
            .expect("bursty_loss_stress"),
    ]
}

fn main() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    std::fs::create_dir_all(&dir).expect("create scenarios/");
    for spec in specs() {
        let path = dir.join(format!("{}.toml", spec.name()));
        std::fs::write(&path, spec.to_toml_string()).expect("write scenario");
        println!("wrote {} ({} epochs)", path.display(), spec.total_epochs());
    }
}
