//! The checked-in scenario zoo must stay loadable and runnable: every
//! `scenarios/*.toml` parses, validates, round-trips through its own
//! serialization, matches its file name, and runs to completion under a
//! small epoch cap. This is the in-tree twin of CI's `scenario-smoke`
//! job (which runs the full specs through the `run_scenario` binary).

use std::path::PathBuf;

use rths_sim::ScenarioSpec;

fn zoo_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn zoo() -> Vec<(String, ScenarioSpec)> {
    let mut specs = Vec::new();
    for entry in std::fs::read_dir(zoo_dir()).expect("scenarios/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let spec = ScenarioSpec::load(&path)
            .unwrap_or_else(|e| panic!("{} failed to load: {e}", path.display()));
        specs.push((stem, spec));
    }
    specs.sort_by(|a, b| a.0.cmp(&b.0));
    specs
}

#[test]
fn the_zoo_is_complete_and_names_match_files() {
    let specs = zoo();
    let names: Vec<&str> = specs.iter().map(|(stem, _)| stem.as_str()).collect();
    assert_eq!(
        names,
        [
            "bursty_loss_stress",
            "channel_surfing",
            "diurnal",
            "flash_crowd_double",
            "flash_crowd_spike",
            "helper_cascade",
        ],
        "scenario zoo changed — update this list and the README catalog"
    );
    for (stem, spec) in &specs {
        assert_eq!(spec.name(), stem, "spec name must match its file name");
        assert!(!spec.description().is_empty(), "{stem}: zoo entries document themselves");
    }
}

#[test]
fn every_zoo_scenario_round_trips() {
    for (stem, spec) in zoo() {
        let reparsed = ScenarioSpec::from_toml_str(&spec.to_toml_string())
            .unwrap_or_else(|e| panic!("{stem}: reserialized spec failed to parse: {e}"));
        assert_eq!(reparsed, spec, "{stem}: TOML round trip changed the spec");
    }
}

#[test]
fn every_zoo_scenario_runs_under_a_small_cap() {
    for (stem, spec) in zoo() {
        let capped = spec.with_epoch_cap(12);
        let report = capped.run();
        assert_eq!(report.name, stem);
        assert!(report.epochs >= 1 && report.epochs <= 12, "{stem}: cap not honored");
        assert!(report.welfare.iter().all(|w| w.is_finite()), "{stem}: non-finite welfare");
        assert!(report.final_population > 0, "{stem}: population collapsed");
    }
}

#[test]
fn zoo_runs_are_deterministic() {
    for (stem, spec) in zoo() {
        let a = spec.clone().with_epoch_cap(10).run();
        let b = spec.with_epoch_cap(10).run();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&a.welfare),
            bits(&b.welfare),
            "{stem}: scenario runs must be bit-reproducible"
        );
    }
}
