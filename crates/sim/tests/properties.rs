//! Property-based tests for the streaming-system simulator.

use proptest::prelude::*;
use rths_sim::{
    AllocationPolicy, BandwidthSpec, LearnerSpec, MultiChannelConfig, MultiChannelSystem,
    SimConfig, System,
};
use rths_stoch::process::ChurnProcess;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_laws_hold(
        n in 1usize..25,
        h in 1usize..6,
        seed in any::<u64>(),
        demand in prop::option::of(100.0..600.0f64),
    ) {
        let mut builder =
            SimConfig::builder(n, vec![BandwidthSpec::Paper { stay: 0.95 }; h]).seed(seed);
        if let Some(d) = demand {
            builder = builder.demand(d);
        }
        let mut sys = System::new(builder.build());
        let out = sys.run(60);
        let cap_bound = 900.0 * h as f64;
        for e in 0..60 {
            // Welfare never exceeds total capacity (or total demand).
            let w = out.metrics.welfare.values()[e];
            prop_assert!(w <= cap_bound + 1e-6);
            if let Some(d) = demand {
                prop_assert!(w <= d * n as f64 + 1e-6);
                // Delivered + server load == total demand.
                let sl = out.metrics.server_load.values()[e];
                prop_assert!((w + sl - d * n as f64).abs() < 1e-6,
                    "conservation violated: {w} + {sl} != {}", d * n as f64);
                // Server load at least the current-capacity deficit bound.
                let bound = out.metrics.current_deficit.values()[e];
                prop_assert!(sl >= bound - 1e-6);
            }
            // Loads sum to population.
            let lsum: f64 = out.metrics.helper_loads.iter().map(|s| s.values()[e]).sum();
            prop_assert_eq!(lsum as usize, n);
            // Jain index well-formed.
            let j = out.metrics.jain.values()[e];
            prop_assert!((0.0..=1.0 + 1e-9).contains(&j));
        }
    }

    #[test]
    fn determinism_across_identical_configs(seed in any::<u64>()) {
        let build = || {
            SimConfig::builder(8, vec![BandwidthSpec::Paper { stay: 0.98 }; 3])
                .seed(seed)
                .churn(ChurnProcess::new(0.3, 0.02))
                .build()
        };
        let out_a = System::new(build()).run(80);
        let out_b = System::new(build()).run(80);
        prop_assert_eq!(out_a.metrics.welfare.values(), out_b.metrics.welfare.values());
        prop_assert_eq!(out_a.final_population, out_b.final_population);
    }

    #[test]
    fn churn_population_never_negative(
        seed in any::<u64>(),
        arrivals in 0.0..3.0f64,
        dep in 0.0..0.3f64,
    ) {
        let config = SimConfig::builder(10, vec![BandwidthSpec::Paper { stay: 0.98 }; 2])
            .churn(ChurnProcess::new(arrivals, dep))
            .seed(seed)
            .build();
        let mut sys = System::new(config);
        let out = sys.run(100);
        for &p in out.metrics.population.values() {
            prop_assert!(p >= 0.0);
        }
    }

    #[test]
    fn multichannel_allocation_never_oversubscribes(
        cap in 100.0..2000.0f64,
        loads in prop::collection::vec(0usize..20, 1..6),
        bitrate in 100.0..600.0f64,
    ) {
        let bitrates = vec![bitrate; loads.len()];
        for policy in [
            AllocationPolicy::EvenSplit,
            AllocationPolicy::LoadProportional,
            AllocationPolicy::WaterFilling,
        ] {
            let split = policy.split(cap, &loads, &bitrates);
            prop_assert_eq!(split.len(), loads.len());
            let total: f64 = split.iter().sum();
            prop_assert!(total <= cap + 1e-6, "{policy:?} oversubscribed");
            prop_assert!(split.iter().all(|&b| b >= -1e-12));
        }
    }

    #[test]
    fn multichannel_system_invariants(
        seed in any::<u64>(),
        k in 2usize..5,
        viewers in 10usize..60,
    ) {
        let mut sys = MultiChannelSystem::new(MultiChannelConfig::standard(
            k, 400.0, k + 2, 2, viewers, 1.0, AllocationPolicy::WaterFilling, seed,
        ));
        let out = sys.run(40);
        prop_assert_eq!(out.epochs, 40);
        prop_assert!(out.viewer_fairness > 0.0 && out.viewer_fairness <= 1.0 + 1e-9);
        for &w in out.welfare.values() {
            prop_assert!(w >= 0.0);
            prop_assert!(w <= 400.0 * viewers as f64 + 1e-6);
        }
        for c in out.channel_continuity {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
        }
    }

    #[test]
    fn stretch_folded_regret_matches_dense_bitwise(
        peers in 1usize..9,
        arity in 1usize..6,
        second_arity in 0usize..6,
        epochs in 1u64..200,
        seed in any::<u64>(),
    ) {
        // The stretch-folded ledger must equal a dense per-epoch row
        // update bit-for-bit on integral workloads (where f64 addition
        // is exact under any grouping — the regime every recorded
        // trajectory lives in). Randomized arms, rates, and join rates;
        // epoch counts cross STRETCH_WINDOW so forced folds run too.
        use rand::{Rng, SeedableRng};
        use rths_sim::regret::{self, DenseRegret, RegretLedger};
        let arities: Vec<usize> =
            if second_arity == 0 { vec![arity] } else { vec![arity, second_arity] };
        let offsets: Vec<usize> = std::iter::once(0)
            .chain(arities.iter().scan(0, |acc, &m| { *acc += m; Some(*acc) }))
            .collect();
        let total: usize = arities.iter().sum();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut folded = RegretLedger::new(&arities);
        let mut dense = DenseRegret::new(&arities);
        let channels: Vec<usize> =
            (0..peers).map(|_| rng.gen_range(0..arities.len())).collect();
        for _ in 0..peers {
            folded.add_peer();
            dense.add_peer();
        }
        for _ in 0..epochs {
            let join: Vec<f64> = (0..total).map(|_| rng.gen_range(0..900) as f64).collect();
            folded.advance_epoch(&offsets, &join);
            let (mut cols, ctx) = folded.split();
            for (i, &c) in channels.iter().enumerate() {
                let played = rng.gen_range(0..arities[c]);
                let rate = rng.gen_range(0..800) as f64;
                let f = regret::record(&mut cols, &ctx, i, c, played, rate);
                let d = dense.record(i, c, played, rate, &join);
                prop_assert_eq!(f.to_bits(), d.to_bits(),
                    "peer {} diverged: folded {} vs dense {}", i, f, d);
            }
        }
        for (i, &c) in channels.iter().enumerate() {
            prop_assert_eq!(folded.peer_max(i, c).to_bits(), dense.peer_max(i).to_bits());
        }
    }

    #[test]
    fn learner_spec_mu_derivation_positive(
        n in 1usize..300,
        h in 1usize..30,
        demand in prop::option::of(100.0..800.0f64),
    ) {
        let mut builder = SimConfig::builder(n, vec![BandwidthSpec::Paper { stay: 0.98 }; h]);
        if let Some(d) = demand {
            builder = builder.demand(d);
        }
        let config = builder.build();
        prop_assert!(config.rate_scale() > 0.0);
        let learner = LearnerSpec::default().instantiate(h, config.rate_scale());
        prop_assert!(learner.is_ok());
    }
}
