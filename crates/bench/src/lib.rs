//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Every `src/bin/figN.rs` binary regenerates one of the paper's figures:
//! it prints the series the figure plots (so the shape can be inspected
//! in the terminal) and writes a CSV under `results/` for external
//! plotting. `src/bin/all_figures.rs` runs the full set; EXPERIMENTS.md
//! records the measured numbers against the paper's claims.

use std::fs;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

/// Seeds used when a figure averages across repetitions.
pub const SEEDS: [u64; 10] = [11, 23, 37, 41, 53, 67, 79, 83, 97, 101];

/// Runs `f` once per seed — one seed per worker when `RTHS_THREADS` > 1 —
/// and returns the results in seed order, so downstream averaging is
/// identical at any thread count. The figure/ablation binaries route
/// their repetition loops through this; see `rths_par` for the threading
/// model.
pub fn per_seed<R, F>(seeds: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    rths_par::par_map(seeds, |_, &seed| f(seed))
}

/// Directory where CSV outputs land (override with `RTHS_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("RTHS_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path).expect("can create results directory");
    path
}

/// Writes a CSV with the given headers and rows; returns the path.
///
/// # Panics
///
/// Panics on I/O errors (harness binaries should fail loudly) or if a row
/// length does not match the header count.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<f64>]) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    // Buffered: an unbuffered File issues one write syscall per row, which
    // dominates the harness runtime for long per-epoch series.
    let mut file = BufWriter::new(fs::File::create(&path).expect("can create CSV file"));
    writeln!(file, "{}", headers.join(",")).expect("can write header");
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row length mismatch in {name}");
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(file, "{}", line.join(",")).expect("can write row");
    }
    file.flush().expect("can flush CSV file");
    path
}

/// Uniformly downsamples `(index, value)` points from a series for
/// printing — keeps terminal output readable for long runs.
pub fn sample_points(values: &[f64], max_points: usize) -> Vec<(usize, f64)> {
    if values.is_empty() || max_points == 0 {
        return Vec::new();
    }
    let stride = values.len().div_ceil(max_points).max(1);
    let mut out: Vec<(usize, f64)> =
        values.iter().step_by(stride).enumerate().map(|(i, &v)| (i * stride, v)).collect();
    let last = values.len() - 1;
    if out.last().map(|&(i, _)| i) != Some(last) {
        out.push((last, values[last]));
    }
    out
}

/// Element-wise mean of several equally long series.
///
/// # Panics
///
/// Panics if the series are empty or lengths differ.
pub fn mean_series(series: &[Vec<f64>]) -> Vec<f64> {
    assert!(!series.is_empty(), "need at least one series");
    let len = series[0].len();
    assert!(series.iter().all(|s| s.len() == len), "series lengths differ");
    (0..len).map(|i| series.iter().map(|s| s[i]).sum::<f64>() / series.len() as f64).collect()
}

/// Prints a two-column series table with an optional third column.
pub fn print_series(title: &str, header: (&str, &str), points: &[(usize, f64)]) {
    println!("\n{title}");
    println!("{:>10}  {:>14}", header.0, header.1);
    for (x, y) in points {
        println!("{x:>10}  {y:>14.3}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_points_keeps_endpoints() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let pts = sample_points(&v, 20);
        assert!(pts.len() <= 21);
        assert_eq!(pts[0], (0, 0.0));
        assert_eq!(*pts.last().unwrap(), (999, 999.0));
    }

    #[test]
    fn mean_series_averages() {
        let m = mean_series(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m, vec![2.0, 3.0]);
    }

    #[test]
    fn csv_written_to_results() {
        std::env::set_var("RTHS_RESULTS_DIR", std::env::temp_dir().join("rths-test-results"));
        let p = write_csv("unit_test", &["a", "b"], &[vec![1.0, 2.0]]);
        let content = std::fs::read_to_string(p).unwrap();
        assert!(content.starts_with("a,b\n1,2"));
        std::env::remove_var("RTHS_RESULTS_DIR");
    }
}
