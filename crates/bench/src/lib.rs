//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Every `src/bin/figN.rs` binary regenerates one of the paper's figures:
//! it prints the series the figure plots (so the shape can be inspected
//! in the terminal) and writes a CSV under `results/` for external
//! plotting. `src/bin/all_figures.rs` runs the full set; EXPERIMENTS.md
//! records the measured numbers against the paper's claims.

#![forbid(unsafe_code)]

use std::fs;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

/// Seeds used when a figure averages across repetitions.
pub const SEEDS: [u64; 10] = [11, 23, 37, 41, 53, 67, 79, 83, 97, 101];

/// Runs `f` once per seed — one seed per worker when `RTHS_THREADS` > 1 —
/// and returns the results in seed order, so downstream averaging is
/// identical at any thread count. The figure/ablation binaries route
/// their repetition loops through this; see `rths_par` for the threading
/// model.
pub fn per_seed<R, F>(seeds: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    rths_par::par_map(seeds, |_, &seed| f(seed))
}

/// Directory where CSV outputs land (override with `RTHS_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("RTHS_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path).expect("can create results directory");
    path
}

/// Writes a CSV with the given headers and rows; returns the path.
///
/// # Panics
///
/// Panics on I/O errors (harness binaries should fail loudly) or if a row
/// length does not match the header count.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<f64>]) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    // Buffered: an unbuffered File issues one write syscall per row, which
    // dominates the harness runtime for long per-epoch series.
    let mut file = BufWriter::new(fs::File::create(&path).expect("can create CSV file"));
    writeln!(file, "{}", headers.join(",")).expect("can write header");
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row length mismatch in {name}");
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(file, "{}", line.join(",")).expect("can write row");
    }
    file.flush().expect("can flush CSV file");
    path
}

/// Uniformly downsamples `(index, value)` points from a series for
/// printing — keeps terminal output readable for long runs.
pub fn sample_points(values: &[f64], max_points: usize) -> Vec<(usize, f64)> {
    if values.is_empty() || max_points == 0 {
        return Vec::new();
    }
    let stride = values.len().div_ceil(max_points).max(1);
    let mut out: Vec<(usize, f64)> =
        values.iter().step_by(stride).enumerate().map(|(i, &v)| (i * stride, v)).collect();
    let last = values.len() - 1;
    if out.last().map(|&(i, _)| i) != Some(last) {
        out.push((last, values[last]));
    }
    out
}

/// Element-wise mean of several equally long series.
///
/// # Panics
///
/// Panics if the series are empty or lengths differ.
pub fn mean_series(series: &[Vec<f64>]) -> Vec<f64> {
    assert!(!series.is_empty(), "need at least one series");
    let len = series[0].len();
    assert!(series.iter().all(|s| s.len() == len), "series lengths differ");
    (0..len).map(|i| series.iter().map(|s| s[i]).sum::<f64>() / series.len() as f64).collect()
}

/// Prints a two-column series table with an optional third column.
pub fn print_series(title: &str, header: (&str, &str), points: &[(usize, f64)]) {
    println!("\n{title}");
    println!("{:>10}  {:>14}", header.0, header.1);
    for (x, y) in points {
        println!("{x:>10}  {y:>14.3}");
    }
}

/// Writes `text` verbatim to `<results_dir>/<name>`; returns the path.
///
/// # Panics
///
/// Panics on I/O errors (harness binaries should fail loudly).
pub fn write_text(name: &str, text: &str) -> PathBuf {
    let path = results_dir().join(name);
    fs::write(&path, text).expect("can write results file");
    path
}

/// Structural JSON well-formedness scan: braces/brackets balanced and
/// properly nested outside string literals, escapes honoured. Not a full
/// parser — it is the shape check the trace-smoke CI job needs without
/// dragging a JSON dependency into the no-registry build.
fn json_balanced(text: &str) -> Result<(), String> {
    let mut stack: Vec<char> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => stack.push('}'),
            '[' => stack.push(']'),
            '}' | ']' if stack.pop() != Some(c) => {
                return Err(format!("unbalanced `{c}` at byte {i}"));
            }
            _ => {}
        }
    }
    if in_string {
        return Err("unterminated string literal".to_string());
    }
    if let Some(open) = stack.pop() {
        return Err(format!("unclosed scope (expected `{open}`)"));
    }
    Ok(())
}

/// Validates an `rths_obs` JSONL trace export: every line is one
/// balanced JSON object carrying a recognized record key (`phase`,
/// `counter`, `gauge`, or `hist`). Returns the line count.
///
/// # Errors
///
/// Returns the first malformed line (or "empty trace").
pub fn validate_trace_jsonl(text: &str) -> Result<usize, String> {
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(format!("line {}: not a JSON object: {line}", i + 1));
        }
        json_balanced(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if !["\"phase\"", "\"counter\"", "\"gauge\"", "\"hist\""]
            .iter()
            .any(|k| line.contains(k))
        {
            return Err(format!("line {}: no recognized record key: {line}", i + 1));
        }
        lines += 1;
    }
    if lines == 0 {
        return Err("empty trace".to_string());
    }
    Ok(lines)
}

/// Validates an `rths_obs` Chrome `trace_event` export: one balanced
/// JSON document with a `traceEvents` array of complete (`"ph":"X"`)
/// events. Returns the event count.
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let text = text.trim();
    if !text.starts_with('{') || !text.ends_with('}') {
        return Err("not a JSON object".to_string());
    }
    json_balanced(text)?;
    if !text.contains("\"traceEvents\"") {
        return Err("missing traceEvents array".to_string());
    }
    let events = text.matches("\"ph\":\"X\"").count();
    if events == 0 {
        return Err("no complete events".to_string());
    }
    Ok(events)
}

/// Exports a finished [`rths_obs::TraceReport`] as
/// `<name>_trace.jsonl` + `<name>_trace.json` (Chrome `trace_event`)
/// under the results directory, validating both on the way out. Returns
/// the two paths.
///
/// # Panics
///
/// Panics if the report is empty or either export fails validation —
/// a harness that asked for a trace and got a malformed one should fail
/// loudly, which is exactly what the `trace-smoke` CI job checks.
pub fn export_trace(report: &rths_obs::TraceReport) -> (PathBuf, PathBuf) {
    assert!(!report.is_empty(), "trace report `{}` is empty", report.name);
    let jsonl = report.to_jsonl();
    validate_trace_jsonl(&jsonl)
        .unwrap_or_else(|e| panic!("invalid JSONL trace for `{}`: {e}", report.name));
    let chrome = report.to_chrome_trace();
    validate_chrome_trace(&chrome)
        .unwrap_or_else(|e| panic!("invalid Chrome trace for `{}`: {e}", report.name));
    let jsonl_path = write_text(&format!("{}_trace.jsonl", report.name), &jsonl);
    let chrome_path = write_text(&format!("{}_trace.json", report.name), &chrome);
    (jsonl_path, chrome_path)
}

/// Parsed view of a `BENCH_sim.json` throughput report — enough structure
/// for the perf regression gate to compare two reports scenario by
/// scenario. The format is this workspace's own (written by the
/// `bench_sim` binary), so a small line-oriented reader beats dragging a
/// JSON dependency into the no-registry build.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSimReport {
    /// `available_parallelism` of the host that produced the report.
    pub host_cores: usize,
    /// Whether the quick (CI-sized) grid was used.
    pub quick: bool,
    /// One entry per grid point.
    pub scenarios: Vec<BenchSimScenario>,
}

/// One grid point of a [`BenchSimReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSimScenario {
    /// Engine name (`single_channel` / `multi_channel`).
    pub engine: String,
    /// Peer population.
    pub peers: usize,
    /// Helper count.
    pub helpers: usize,
    /// Channel count.
    pub channels: usize,
    /// Epochs each run executed. Two reports' scenarios are only
    /// throughput-comparable when this matches (warm-up amortizes over
    /// the epoch count, so epochs/sec reads systematically low on short
    /// runs).
    pub epochs: u64,
    /// Process peak RSS (`VmHWM`, kB) recorded right after this
    /// scenario's runs (monotone high-water mark; the grid runs
    /// smallest-first). 0 in reports written before the field existed or
    /// on hosts that cannot read it.
    pub peak_rss_kb: u64,
    /// `(threads, epochs_per_sec)` per timed run.
    pub runs: Vec<(usize, f64)>,
}

impl BenchSimScenario {
    /// Stable identity of a grid point across reports.
    pub fn key(&self) -> (String, usize, usize, usize) {
        (self.engine.clone(), self.peers, self.helpers, self.channels)
    }

    /// Epochs/sec recorded at `threads`, if that run exists.
    pub fn epochs_per_sec(&self, threads: usize) -> Option<f64> {
        self.runs.iter().find(|(t, _)| *t == threads).map(|&(_, e)| e)
    }
}

/// Extracts the number following `"key": ` on `line`, if present.
fn json_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = line[start..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

fn json_usize(line: &str, key: &str) -> Option<usize> {
    json_field(line, key)?.parse().ok()
}

fn json_f64(line: &str, key: &str) -> Option<f64> {
    json_field(line, key)?.parse().ok()
}

/// Parses a `BENCH_sim.json` report.
///
/// # Errors
///
/// Returns a description of the first structural problem (missing header
/// fields or no scenarios).
pub fn parse_bench_sim(text: &str) -> Result<BenchSimReport, String> {
    let mut host_cores = None;
    let mut quick = false;
    let mut scenarios: Vec<BenchSimScenario> = Vec::new();
    for line in text.lines() {
        if host_cores.is_none() {
            if let Some(cores) = json_usize(line, "host_cores") {
                host_cores = Some(cores);
            }
        }
        if let Some(q) = json_field(line, "quick") {
            quick = q == "true";
        }
        if let Some(engine) = json_field(line, "engine") {
            scenarios.push(BenchSimScenario {
                engine,
                peers: 0,
                helpers: 0,
                channels: 0,
                epochs: 0,
                peak_rss_kb: 0,
                runs: Vec::new(),
            });
        }
        if let Some(current) = scenarios.last_mut() {
            // `peers`/`helpers`/`channels`/`epochs` appear once per
            // scenario, before the runs array; run lines carry `threads`
            // + `epochs_per_sec`.
            if let Some(threads) = json_usize(line, "threads") {
                if let Some(eps) = json_f64(line, "epochs_per_sec") {
                    current.runs.push((threads, eps));
                    continue;
                }
            }
            if current.runs.is_empty() {
                if let Some(peers) = json_usize(line, "peers") {
                    current.peers = peers;
                }
                if let Some(helpers) = json_usize(line, "helpers") {
                    current.helpers = helpers;
                }
                if let Some(channels) = json_usize(line, "channels") {
                    current.channels = channels;
                }
                if let Some(epochs) = json_usize(line, "epochs") {
                    current.epochs = epochs as u64;
                }
                if let Some(rss) = json_usize(line, "peak_rss_kb") {
                    current.peak_rss_kb = rss as u64;
                }
            }
        }
    }
    let host_cores = host_cores.ok_or("missing host_cores field")?;
    if scenarios.is_empty() {
        return Err("no scenarios found".to_string());
    }
    if scenarios.iter().any(|s| s.runs.is_empty()) {
        return Err("scenario without runs".to_string());
    }
    Ok(BenchSimReport { host_cores, quick, scenarios })
}

/// Peak resident set size of this process so far (`VmHWM`, in kB), read
/// from `/proc/self/status`. Returns 0 where the file is unavailable
/// (non-Linux), so callers can record it unconditionally.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Parsed view of a `BENCH_net.json` backend-throughput report, for the
/// perf gate's scenario-by-scenario comparison (same hand-rolled reader
/// rationale as [`parse_bench_sim`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchNetReport {
    /// `available_parallelism` of the host that produced the report.
    pub host_cores: usize,
    /// Whether the quick (CI-sized) grid was used.
    pub quick: bool,
    /// One entry per grid point.
    pub scenarios: Vec<BenchNetScenario>,
}

/// One grid point of a [`BenchNetReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchNetScenario {
    /// Peer population.
    pub peers: usize,
    /// Helper count.
    pub helpers: usize,
    /// Total actors (peers + helpers).
    pub actors: usize,
    /// Epochs each run executed (throughput comparability key, as in
    /// [`BenchSimScenario::epochs`]).
    pub epochs: u64,
    /// Process peak RSS (`VmHWM`, kB) recorded right after this
    /// scenario's runs. The grid runs smallest-first, so the first
    /// scenario that bumps the high-water mark owns it; 0 when the
    /// producing host could not read it.
    pub peak_rss_kb: u64,
    /// One entry per timed run.
    pub runs: Vec<BenchNetRun>,
}

/// One timed run of a [`BenchNetScenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchNetRun {
    /// Backend name (`threaded` / `reactor` / `multiprocN`).
    pub backend: String,
    /// Worker threads the run used.
    pub threads: usize,
    /// OS processes hosting the mesh; `None` in reports written before
    /// the multi-process backend existed (always 1 then).
    pub processes: Option<usize>,
    /// Epoch throughput (actor-epochs per second).
    pub actors_per_sec: f64,
    /// Mesh-construction throughput (actors per second), `None` in
    /// reports written before construction was recorded and for
    /// multi-process runs (construction overlaps the worker handshake
    /// there).
    pub construct_actors_per_sec: Option<f64>,
    /// Summed per-process peak RSS (kB) of a multi-process run; `None`
    /// for in-process runs, which the scenario-level `peak_rss_kb`
    /// covers.
    pub rss_total_kb: Option<u64>,
    /// Largest single-process peak RSS (kB) of a multi-process run.
    pub rss_max_kb: Option<u64>,
}

impl BenchNetScenario {
    /// Stable identity of a grid point across reports.
    pub fn key(&self) -> (usize, usize, usize) {
        (self.peers, self.helpers, self.actors)
    }

    /// Actors/sec recorded for `backend`, if that run exists.
    pub fn actors_per_sec(&self, backend: &str) -> Option<f64> {
        self.runs.iter().find(|r| r.backend == backend).map(|r| r.actors_per_sec)
    }

    /// Construction actors/sec recorded for `backend`, if that run
    /// exists and the report is recent enough to carry the field.
    pub fn construct_actors_per_sec(&self, backend: &str) -> Option<f64> {
        self.runs.iter().find(|r| r.backend == backend)?.construct_actors_per_sec
    }
}

/// Parses a `BENCH_net.json` report.
///
/// # Errors
///
/// Returns a description of the first structural problem (missing header
/// fields or no scenarios).
pub fn parse_bench_net(text: &str) -> Result<BenchNetReport, String> {
    let mut host_cores = None;
    let mut quick = false;
    let mut scenarios: Vec<BenchNetScenario> = Vec::new();
    let mut in_scenarios = false;
    for line in text.lines() {
        if line.contains("\"scenarios\"") {
            in_scenarios = true;
        }
        if host_cores.is_none() {
            if let Some(cores) = json_usize(line, "host_cores") {
                host_cores = Some(cores);
            }
        }
        if let Some(q) = json_field(line, "quick") {
            quick = q == "true";
        }
        if let Some(backend) = json_field(line, "backend") {
            let (Some(threads), Some(aps)) =
                (json_usize(line, "threads"), json_f64(line, "actors_per_sec"))
            else {
                return Err("run line missing threads/actors_per_sec".to_string());
            };
            let Some(current) = scenarios.last_mut() else {
                return Err("run line before any scenario".to_string());
            };
            current.runs.push(BenchNetRun {
                backend,
                threads,
                processes: json_usize(line, "processes"),
                actors_per_sec: aps,
                construct_actors_per_sec: json_f64(line, "construct_actors_per_sec"),
                rss_total_kb: json_usize(line, "rss_total_kb").map(|v| v as u64),
                rss_max_kb: json_usize(line, "rss_max_kb").map(|v| v as u64),
            });
            continue;
        }
        if in_scenarios {
            if let Some(peers) = json_usize(line, "peers") {
                scenarios.push(BenchNetScenario {
                    peers,
                    helpers: 0,
                    actors: 0,
                    epochs: 0,
                    peak_rss_kb: 0,
                    runs: Vec::new(),
                });
                continue;
            }
        }
        if let Some(current) = scenarios.last_mut() {
            if let Some(helpers) = json_usize(line, "helpers") {
                current.helpers = helpers;
            }
            if let Some(actors) = json_usize(line, "actors") {
                current.actors = actors;
            }
            if let Some(epochs) = json_usize(line, "epochs") {
                current.epochs = epochs as u64;
            }
            if let Some(rss) = json_usize(line, "peak_rss_kb") {
                current.peak_rss_kb = rss as u64;
            }
        }
    }
    let host_cores = host_cores.ok_or("missing host_cores field")?;
    if scenarios.is_empty() {
        return Err("no scenarios found".to_string());
    }
    if scenarios.iter().any(|s| s.runs.is_empty()) {
        return Err("scenario without runs".to_string());
    }
    Ok(BenchNetReport { host_cores, quick, scenarios })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_points_keeps_endpoints() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let pts = sample_points(&v, 20);
        assert!(pts.len() <= 21);
        assert_eq!(pts[0], (0, 0.0));
        assert_eq!(*pts.last().unwrap(), (999, 999.0));
    }

    #[test]
    fn mean_series_averages() {
        let m = mean_series(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m, vec![2.0, 3.0]);
    }

    #[test]
    fn parses_the_bench_sim_format() {
        let text = r#"{
  "bench": "sim_scale_grid",
  "host_cores": 4,
  "quick": false,
  "scenarios": [
    {
      "engine": "single_channel",
      "peers": 200,
      "helpers": 20,
      "channels": 1,
      "epochs": 600,
      "peak_rss_kb": 10240,
      "identical_output": true,
      "speedup_best": 1.0000,
      "runs": [
        {"threads": 1, "secs": 0.50, "epochs_per_sec": 1200.0, "welfare_checksum": 9599400.0},
        {"threads": 2, "secs": 0.25, "epochs_per_sec": 2400.0, "welfare_checksum": 9599400.0}
      ]
    },
    {
      "engine": "multi_channel",
      "peers": 2000,
      "helpers": 48,
      "channels": 16,
      "epochs": 80,
      "identical_output": true,
      "speedup_best": 1.0,
      "runs": [
        {"threads": 1, "secs": 0.1, "epochs_per_sec": 800.0, "welfare_checksum": 1.0}
      ]
    }
  ]
}"#;
        let report = parse_bench_sim(text).unwrap();
        assert_eq!(report.host_cores, 4);
        assert!(!report.quick);
        assert_eq!(report.scenarios.len(), 2);
        let first = &report.scenarios[0];
        assert_eq!(first.key(), ("single_channel".to_string(), 200, 20, 1));
        assert_eq!(first.epochs, 600);
        assert_eq!(first.peak_rss_kb, 10240);
        assert_eq!(first.epochs_per_sec(2), Some(2400.0));
        assert_eq!(first.epochs_per_sec(8), None);
        assert_eq!(report.scenarios[1].channels, 16);
        assert_eq!(report.scenarios[1].epochs, 80);
        // A second scenario without the field degrades to 0 (old report).
        assert_eq!(report.scenarios[1].peak_rss_kb, 0);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_bench_sim("{}").is_err());
        assert!(parse_bench_sim("{\"host_cores\": 2}").is_err());
    }

    #[test]
    fn parses_the_bench_net_format() {
        let text = r#"{
  "bench": "net_backend_grid",
  "host_cores": 4,
  "quick": true,
  "scenarios": [
    {
      "peers": 152,
      "helpers": 8,
      "actors": 160,
      "epochs": 50,
      "peak_rss_kb": 20480,
      "identical_output": true,
      "runs": [
        {"backend": "threaded", "threads": 1, "secs": 0.3, "actors_per_sec": 26666.0, "welfare_checksum": 1.0},
        {"backend": "reactor", "threads": 1, "construct_secs": 0.002, "construct_actors_per_sec": 80000.0, "secs": 0.01, "actors_per_sec": 800000.0, "welfare_checksum": 1.0}
      ]
    },
    {
      "peers": 99936,
      "helpers": 64,
      "actors": 100000,
      "epochs": 8,
      "peak_rss_kb": 4194304,
      "identical_output": true,
      "runs": [
        {"backend": "reactor", "threads": 1, "secs": 10.0, "actors_per_sec": 80000.0, "welfare_checksum": 2.0},
        {"backend": "multiproc2", "threads": 1, "processes": 2, "secs": 6.0, "actors_per_sec": 133333.0, "rss_total_kb": 4800000, "rss_max_kb": 2500000, "welfare_checksum": 2.0}
      ]
    }
  ]
}"#;
        let report = parse_bench_net(text).unwrap();
        assert_eq!(report.host_cores, 4);
        assert!(report.quick);
        assert_eq!(report.scenarios.len(), 2);
        let first = &report.scenarios[0];
        assert_eq!(first.key(), (152, 8, 160));
        assert_eq!(first.epochs, 50);
        assert_eq!(first.peak_rss_kb, 20480);
        assert_eq!(first.actors_per_sec("reactor"), Some(800000.0));
        assert_eq!(first.actors_per_sec("carrier-pigeon"), None);
        // New-format runs carry construction throughput; old-format run
        // lines (the threaded one above) degrade to None.
        assert_eq!(first.construct_actors_per_sec("reactor"), Some(80000.0));
        assert_eq!(first.construct_actors_per_sec("threaded"), None);
        assert_eq!(report.scenarios[1].actors, 100000);
        // Multi-process runs carry process counts and aggregated RSS;
        // in-process runs (and old reports) degrade to None.
        let large = &report.scenarios[1];
        let mp = large.runs.iter().find(|r| r.backend == "multiproc2").unwrap();
        assert_eq!(mp.processes, Some(2));
        assert_eq!(mp.rss_total_kb, Some(4800000));
        assert_eq!(mp.rss_max_kb, Some(2500000));
        assert_eq!(large.runs[0].processes, None);
        assert_eq!(large.runs[0].rss_total_kb, None);
    }

    #[test]
    fn bench_net_parser_rejects_garbage() {
        assert!(parse_bench_net("{}").is_err());
        assert!(parse_bench_net("{\"host_cores\": 2}").is_err());
    }

    #[test]
    fn peak_rss_reads_something_on_linux() {
        // On Linux the test process certainly has a nonzero high-water
        // mark; elsewhere the helper degrades to 0 by contract.
        let rss = peak_rss_kb();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 0, "VmHWM should be positive, got {rss}");
        }
    }

    #[test]
    fn trace_jsonl_validator_accepts_real_exports() {
        let mut report = rths_obs::TraceReport::empty("unit");
        report.counters[0] = 3;
        let lines = validate_trace_jsonl(&report.to_jsonl()).unwrap();
        // One line per counter and gauge (no spans or hists recorded).
        assert!(lines >= 2, "expected counter+gauge lines, got {lines}");
    }

    #[test]
    fn trace_jsonl_validator_rejects_garbage() {
        assert!(validate_trace_jsonl("").is_err());
        assert!(validate_trace_jsonl("{\"phase\":\"x\"").is_err());
        assert!(validate_trace_jsonl("{\"unrelated\":1}").is_err());
        assert!(validate_trace_jsonl("{\"phase\":\"a}{\"}{").is_err());
    }

    #[test]
    fn chrome_trace_validator_counts_events() {
        let mut report = rths_obs::TraceReport::empty("unit");
        report.spans.push(rths_obs::SpanRecord {
            phase: rths_obs::Phase::Choose,
            epoch: 0,
            worker: 0,
            start_ns: 10,
            dur_ns: 20,
        });
        assert_eq!(validate_chrome_trace(&report.to_chrome_trace()), Ok(1));
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}").is_err());
    }

    #[test]
    fn csv_written_to_results() {
        // Routed through the sanctioned env guard: a bare set_var here
        // raced any concurrently running test that reads the results dir.
        let dir = std::env::temp_dir().join("rths-test-results");
        let content = rths_par::env::with_var("RTHS_RESULTS_DIR", dir.to_str(), || {
            let p = write_csv("unit_test", &["a", "b"], &[vec![1.0, 2.0]]);
            std::fs::read_to_string(p).unwrap()
        });
        assert!(content.starts_with("a,b\n1,2"));
    }
}
