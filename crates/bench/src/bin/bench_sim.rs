//! Simulator throughput baseline: emits `BENCH_sim.json`.
//!
//! Runs a peers×helpers×epochs grid through both engines, once per thread
//! count, and records wall-clock epochs/sec plus a welfare checksum per
//! run. The checksum proves the parallel runtime's headline property: the
//! series is **bit-for-bit identical at every thread count** (the JSON
//! carries `identical_output` per scenario). The sequential run
//! (`threads = 1`) is the baseline every later perf PR is measured
//! against.
//!
//! Run with: `cargo run --release -p rths_bench --bin bench_sim`
//!
//! * `RTHS_THREADS=T` benches `[1, T]` instead of the default `[1, 2, 4]`
//!   (`RTHS_THREADS=1` benches the sequential baseline only).
//! * `RTHS_BENCH_QUICK=1` shrinks the grid for CI smoke jobs.
//! * `RTHS_BENCH_LARGE=1` adds the truncated large-grid point (10⁵ peers
//!   / 10³ helpers / 10² channels, fixed epoch count so the scenario is
//!   comparable across quick and full reports — the CI smoke job's way
//!   of keeping the perf gate armed at scale).
//! * The full grid tops out at the ROADMAP's **10⁶ peers / 10³ helpers /
//!   10² channels** point, exercising the sharded SoA peer store at the
//!   population the paper's claims are about.
//! * Each scenario records the process peak RSS (`VmHWM`) like
//!   `bench_net` does, so the memory trajectory of the simulator grid is
//!   gated (warn-only) by `perf_gate` too.
//! * `RTHS_TRACE=1` additionally exports an `rths_obs` trace of the whole
//!   grid (`bench_sim_trace.jsonl` / `.json`). Tracing adds measurement
//!   overhead — traced throughput numbers are for profiling, not for
//!   committing as a baseline.
//! * Output lands in `results/BENCH_sim.json` (see `RTHS_RESULTS_DIR`).

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

use rths_bench::{export_trace, peak_rss_kb, results_dir};
use rths_obs as obs;
use rths_sim::{
    AllocationPolicy, BandwidthSpec, MultiChannelConfig, MultiChannelSystem, SimConfig, System,
};

/// One grid point.
struct Scenario {
    engine: &'static str,
    peers: usize,
    helpers: usize,
    channels: usize,
    /// Channels served per helper (multi-channel only): sizes the
    /// per-viewer action set at `helpers × cph / channels`.
    channels_per_helper: usize,
    epochs: u64,
}

/// One timed run of a scenario.
struct Run {
    threads: usize,
    secs: f64,
    epochs_per_sec: f64,
    welfare_checksum: f64,
}

fn grid(quick: bool, large: bool) -> Vec<Scenario> {
    let scale = if quick { 4 } else { 1 };
    let mut scenarios = vec![
        Scenario {
            engine: "single_channel",
            peers: 200,
            helpers: 20,
            channels: 1,
            channels_per_helper: 1,
            epochs: 600 / scale,
        },
        Scenario {
            engine: "single_channel",
            peers: 1000,
            helpers: 32,
            channels: 1,
            channels_per_helper: 1,
            epochs: 200 / scale,
        },
        Scenario {
            engine: "single_channel",
            peers: 4000,
            helpers: 64,
            channels: 1,
            channels_per_helper: 1,
            epochs: 80 / scale,
        },
        Scenario {
            engine: "multi_channel",
            peers: 2000,
            helpers: 48,
            channels: 16,
            channels_per_helper: 4,
            epochs: 80 / scale,
        },
    ];
    // The truncated large-grid point: deliberately *not* scaled by quick
    // mode, so the CI smoke run and the committed full baseline record
    // the same scenario and the perf gate can compare them like-for-like.
    if large || !quick {
        scenarios.push(Scenario {
            engine: "multi_channel",
            peers: 100_000,
            helpers: 1000,
            channels: 100,
            channels_per_helper: 1,
            epochs: 4,
        });
    }
    // The ROADMAP's million-peer workload (full grid only): 10⁶ viewers
    // over 10² channels served by 10³ helpers (~10 helpers per channel),
    // the population the sharded SoA store exists for.
    if !quick {
        scenarios.push(Scenario {
            engine: "multi_channel",
            peers: 1_000_000,
            helpers: 1000,
            channels: 100,
            channels_per_helper: 1,
            epochs: 4,
        });
    }
    scenarios
}

/// Runs one scenario at the current `RTHS_THREADS` setting and returns
/// `(secs, welfare_checksum)`. A fresh system per run keeps every
/// measurement cold-start comparable and every output seed-pinned.
fn run_once(s: &Scenario) -> (f64, f64) {
    match s.engine {
        "single_channel" => {
            let config = SimConfig::builder(
                s.peers,
                vec![BandwidthSpec::Paper { stay: 0.98 }; s.helpers],
            )
            .seed(7)
            .build();
            let mut system = System::new(config);
            let start = Instant::now();
            let out = system.run(s.epochs);
            let secs = start.elapsed().as_secs_f64();
            (secs, out.metrics.welfare.values().iter().sum())
        }
        "multi_channel" => {
            let config = MultiChannelConfig::standard(
                s.channels,
                400.0,
                s.helpers,
                s.channels_per_helper,
                s.peers,
                1.2,
                AllocationPolicy::WaterFilling,
                7,
            );
            let mut system = MultiChannelSystem::new(config);
            let start = Instant::now();
            let out = system.run(s.epochs);
            let secs = start.elapsed().as_secs_f64();
            (secs, out.welfare.values().iter().sum())
        }
        other => unreachable!("unknown engine {other}"),
    }
}

fn main() {
    obs::init_from_env();
    if obs::enabled() {
        obs::begin_run("bench_sim");
        println!("rths_obs tracing enabled — throughput numbers are not baseline-comparable");
    }
    let quick = std::env::var("RTHS_BENCH_QUICK").is_ok_and(|v| v != "0");
    let large = std::env::var("RTHS_BENCH_LARGE").is_ok_and(|v| v != "0");
    // Unset → default grid; an explicit RTHS_THREADS=1 means "sequential
    // baseline only" (rths_par::threads() cannot tell the two apart).
    let requested = std::env::var("RTHS_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1);
    let thread_counts: Vec<usize> = match requested {
        None => vec![1, 2, 4],
        Some(1) => vec![1],
        Some(t) => vec![1, t],
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scenarios = grid(quick, large);
    println!(
        "BENCH_sim — engine throughput grid ({} scenarios, threads {:?}, {} host cores{})",
        scenarios.len(),
        thread_counts,
        host_cores,
        if quick { ", quick mode" } else { "" }
    );
    println!(
        "\n{:<15} {:>6} {:>8} {:>9} {:>8} | {:>8} {:>13} {:>10} {:>12}",
        "engine",
        "peers",
        "helpers",
        "channels",
        "epochs",
        "threads",
        "epochs/sec",
        "speedup",
        "peakRSS(MB)"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"sim_scale_grid\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"scenarios\": [");

    for (si, s) in scenarios.iter().enumerate() {
        let mut runs: Vec<Run> = Vec::with_capacity(thread_counts.len());
        for &t in &thread_counts {
            // The scoped override pins the pool's worker count for this
            // run without touching process-global state.
            let (secs, welfare_checksum) = rths_par::with_threads(t, || run_once(s));
            runs.push(Run {
                threads: t,
                secs,
                epochs_per_sec: s.epochs as f64 / secs.max(1e-12),
                welfare_checksum,
            });
        }

        // Peak RSS right after the scenario's runs — same monotone
        // high-water-mark convention as bench_net (grid runs
        // smallest-first, so the first scenario to raise it owns it).
        let rss_kb = peak_rss_kb();
        let baseline = runs[0].epochs_per_sec;
        let identical = runs
            .iter()
            .all(|r| r.welfare_checksum.to_bits() == runs[0].welfare_checksum.to_bits());
        let best_speedup =
            runs.iter().map(|r| r.epochs_per_sec / baseline).fold(0.0f64, f64::max);
        for (ri, r) in runs.iter().enumerate() {
            if ri == 0 {
                print!(
                    "{:<15} {:>6} {:>8} {:>9} {:>8} |",
                    s.engine, s.peers, s.helpers, s.channels, s.epochs
                );
            } else {
                print!("{:<15} {:>6} {:>8} {:>9} {:>8} |", "", "", "", "", "");
            }
            print!(
                " {:>8} {:>13.1} {:>9.2}x",
                r.threads,
                r.epochs_per_sec,
                r.epochs_per_sec / baseline
            );
            if ri + 1 == runs.len() {
                println!(" {:>12.0}", rss_kb as f64 / 1024.0);
            } else {
                println!();
            }
        }
        assert!(identical, "parallel output diverged from sequential in {}", s.engine);

        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"engine\": \"{}\",", s.engine);
        let _ = writeln!(json, "      \"peers\": {},", s.peers);
        let _ = writeln!(json, "      \"helpers\": {},", s.helpers);
        let _ = writeln!(json, "      \"channels\": {},", s.channels);
        let _ = writeln!(json, "      \"epochs\": {},", s.epochs);
        let _ = writeln!(json, "      \"peak_rss_kb\": {rss_kb},");
        let _ = writeln!(json, "      \"identical_output\": {identical},");
        let _ = writeln!(json, "      \"speedup_best\": {best_speedup:.4},");
        let _ = writeln!(json, "      \"runs\": [");
        for (ri, r) in runs.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{\"threads\": {}, \"secs\": {:.6}, \"epochs_per_sec\": {:.3}, \
                 \"welfare_checksum\": {:.6}}}{}",
                r.threads,
                r.secs,
                r.epochs_per_sec,
                r.welfare_checksum,
                if ri + 1 < runs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(json, "    }}{}", if si + 1 < scenarios.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let path = results_dir().join("BENCH_sim.json");
    let mut file = std::fs::File::create(&path).expect("can create BENCH_sim.json");
    file.write_all(json.as_bytes()).expect("can write BENCH_sim.json");
    println!("\nall outputs identical across thread counts; json: {}", path.display());
    if obs::enabled() {
        let (jsonl, chrome) = export_trace(&obs::take_report());
        println!("trace: {} | {}", jsonl.display(), chrome.display());
    }
}
