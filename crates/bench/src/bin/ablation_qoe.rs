//! Ablation abl-qoe: the §III.B stability argument in viewer terms.
//!
//! Best-response herding leaves every peer sharing one helper (rate
//! C/N); RTHS spreads the audience. Feeding both rate traces through the
//! playback-buffer model shows what that means for actual viewing:
//! stalls per minute and rebuffer ratio.
//!
//! Run with: `cargo run --release -p rths-bench --bin ablation_qoe`

use rths_bench::write_csv;
use rths_game::{best_response, HelperSelectionGame};
use rths_sim::{BandwidthSpec, PlaybackBuffer, SimConfig, System};

fn main() {
    let n = 20usize;
    let caps = [800.0, 800.0];
    let bitrate = 75.0; // fair share is 80 kbps — feasible, but tight.
    let epochs = 3000usize;
    println!(
        "Ablation — playback QoE: {n} peers, two 800 kbps helpers, {bitrate} kbps stream\n"
    );

    // Best-response herding: everyone always shares one helper.
    let game = HelperSelectionGame::new(caps.to_vec());
    let trace = best_response::synchronous(&game, &vec![0usize; n], epochs);
    let br_rates: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            trace.profiles[..epochs.min(trace.profiles.len())]
                .iter()
                .map(|profile| {
                    let loads = game.loads(profile);
                    game.rate(profile[i], loads[profile[i]]).min(bitrate)
                })
                .collect()
        })
        .collect();

    // RTHS in the simulator, recording per-peer rates.
    let config = SimConfig::builder(n, vec![BandwidthSpec::Constant(800.0); 2])
        .demand(bitrate)
        .record_peer_rates(true)
        .seed(8)
        .build();
    let mut system = System::new(config);
    let out = system.run(epochs as u64);
    let rths_rates = out.peer_rate_series.expect("recording enabled");

    let buffer = PlaybackBuffer::live_default(bitrate);
    let mut rows = Vec::new();
    println!(
        "{:<22} {:>14} {:>16} {:>15}",
        "policy", "stalls/minute", "rebuffer ratio", "startup (s)"
    );
    for (idx, (name, traces)) in
        [("best response (herd)", &br_rates), ("RTHS", &rths_rates)].iter().enumerate()
    {
        let stats: Vec<_> = traces.iter().map(|r| buffer.replay(r)).collect();
        let minutes = epochs as f64 / 60.0;
        let stalls_pm = rths_math::stats::mean(
            &stats.iter().map(|s| s.stall_events as f64 / minutes).collect::<Vec<_>>(),
        );
        let rebuffer =
            rths_math::stats::mean(&stats.iter().map(|s| s.rebuffer_ratio).collect::<Vec<_>>());
        let startup =
            rths_math::stats::mean(&stats.iter().map(|s| s.startup_delay).collect::<Vec<_>>());
        println!("{name:<22} {stalls_pm:>14.2} {rebuffer:>16.3} {startup:>15.1}");
        rows.push(vec![idx as f64, stalls_pm, rebuffer, startup]);
    }
    let path = write_csv(
        "ablation_qoe",
        &["policy", "stalls_per_minute", "rebuffer_ratio", "startup_seconds"],
        &rows,
    );
    println!("\nreading: herding halves everyone's rate below the bitrate, so playback");
    println!("stalls continuously; RTHS's stable near-even split keeps the stream");
    println!("at ~fair share ≥ bitrate and the buffer almost never drains.");
    println!("csv: {}", path.display());
}
