//! Decentralized-runtime throughput: emits `BENCH_net.json`.
//!
//! Runs a peers×helpers grid through **both net backends** — the
//! thread-per-actor runtime and the reactor event loop — and records
//! wall-clock **actors/sec** (actor-epochs processed per second: every
//! actor takes part in every epoch) plus a welfare checksum per run. The
//! checksum pins the headline property: both backends produce bit-for-bit
//! identical trajectories, so the reactor's ~order-of-magnitude scaling
//! headroom is free of behaviour drift.
//!
//! The top comparable grid point hosts **5,000 actors** — far beyond
//! what thread-per-actor can sensibly run in CI, which is exactly the gap
//! the reactor closes — and the grid then pushes the reactor alone to
//! **20,000 actors** in one process (thread-per-actor would need 20k OS
//! threads, so that point records no threaded run) and, with
//! `RTHS_BENCH_LARGE=1`, to **100,000 actors** at a fixed epoch count.
//! At the ≥2×10⁴-actor points the grid also times the **multi-process
//! reactor** (`rths_net::run_multiproc`) at 2 and 4 OS processes —
//! recorded as backends `multiproc2`/`multiproc4` with per-process peak
//! RSS aggregated as `rss_total_kb` (sum) and `rss_max_kb`, since the
//! workers' high-water marks never show up in the parent's `VmHWM`.
//! The per-shard learner slabs (`rths_core::slab`) plus the
//! stretch-folded `O(n·h)` regret ledger (`rths_sim::regret`) and the
//! reactor's per-shard mailbox rings are what keep 10⁵ `PeerMachine`s
//! inside a sane footprint — each scenario records the process peak RSS
//! (`VmHWM`) so the memory trajectory is visible alongside throughput,
//! and each run records mesh-construction time separately from epoch
//! throughput (`construct_secs` / `construct_actors_per_sec`).
//! Run with: `cargo run --release -p rths_bench --bin bench_net`
//!
//! * `RTHS_BENCH_QUICK=1` shrinks epochs and caps the threaded backend at
//!   [`QUICK_THREADED_ACTOR_CAP`] actors (CI smoke).
//! * `RTHS_BENCH_LARGE=1` appends the 10⁵-actor reactor-only point at a
//!   **fixed** epoch count ([`LARGE_EPOCHS`]), identical in quick and
//!   full mode so `perf_gate`'s per-scenario epoch matching can compare
//!   a CI run against the committed full-grid baseline.
//! * `RTHS_THREADS` shards the reactor's rounds (recorded in the JSON;
//!   results are identical at any value).
//! * `RTHS_TRACE=1` exports an `rths_obs` trace of the **last** grid
//!   run (each runtime's `run()` begins a fresh trace) as
//!   `net_reactor_trace.jsonl` / `.json`. Tracing adds measurement
//!   overhead — traced numbers are for profiling, not baselines.
//! * Output lands in `results/BENCH_net.json` (see `RTHS_RESULTS_DIR`).
//!
//! Learner-estimate tracking (`NetConfig::track_estimate`) is disabled:
//! the `O(m²)` per-peer scan is a metrics feature, not protocol work,
//! and the committed baselines predate it.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

use rths_bench::{export_trace, peak_rss_kb, results_dir};
use rths_net::{Backend, NetConfig, NetOutcome};
use rths_obs as obs;
use rths_sim::{BandwidthSpec, SimConfig};

/// In quick (CI) mode, skip the threaded backend above this actor count:
/// thousands of OS threads on a shared runner is exactly the pathology
/// the reactor exists to avoid.
const QUICK_THREADED_ACTOR_CAP: usize = 1_200;

/// Even in full mode the threaded backend stops here — the grid points
/// beyond it exist to demonstrate the reactor's ceiling, and spawning
/// tens of thousands of OS threads proves nothing but the pathology.
const THREADED_ACTOR_CAP: usize = 5_000;

/// Fixed epoch count of the `RTHS_BENCH_LARGE` 10⁵-actor point — the
/// same in quick and full mode, so the CI smoke run is epoch-comparable
/// with the committed baseline.
const LARGE_EPOCHS: u64 = 12;

/// One grid point.
struct Scenario {
    peers: usize,
    helpers: usize,
    epochs: u64,
}

impl Scenario {
    fn actors(&self) -> usize {
        self.peers + self.helpers
    }
}

/// One timed run.
struct Run {
    backend: String,
    threads: usize,
    /// OS processes hosting the mesh (1 for the in-process backends).
    processes: usize,
    /// `(secs, actors/sec)` of mesh construction. `None` for the
    /// multi-process backend, where spawning workers, the config
    /// handshake, and partition construction all overlap inside the
    /// measured run.
    construct: Option<(f64, f64)>,
    secs: f64,
    actors_per_sec: f64,
    /// `(sum, max)` of per-process peak RSS (`VmHWM`, kB) for
    /// multi-process runs: the children's high-water marks are invisible
    /// in the parent's `/proc/self/status`, so the scenario-level figure
    /// alone would undercount a sharded run by roughly
    /// `(processes-1)/processes`. `None` for in-process runs, which the
    /// scenario-level mark covers.
    rss_kb: Option<(u64, u64)>,
    welfare_checksum: f64,
}

fn grid(quick: bool, large: bool) -> Vec<Scenario> {
    let scale = if quick { 4 } else { 1 };
    let mut grid = vec![
        Scenario { peers: 152, helpers: 8, epochs: 200 / scale },
        Scenario { peers: 960, helpers: 40, epochs: 60 / scale },
        // The headline comparison point: 5,000 actors in one process.
        Scenario { peers: 4_950, helpers: 50, epochs: (50 / scale).max(10) },
        // The reactor's demonstrated ceiling per OS process before this
        // PR: 20,000 actors (reactor only — see THREADED_ACTOR_CAP).
        Scenario { peers: 19_936, helpers: 64, epochs: (40 / scale).max(10) },
    ];
    if large {
        // 10⁵ actors at the same 64-helper density as the 2×10⁴ point:
        // the O(n·h) regret ledger + mailbox rings keep it in memory
        // (the dense n·h² table alone would be ~3.3 GB here). Fixed
        // epoch count for cross-report comparability.
        grid.push(Scenario { peers: 99_936, helpers: 64, epochs: LARGE_EPOCHS });
    }
    grid
}

fn config(s: &Scenario) -> NetConfig {
    let sim = SimConfig::builder(s.peers, vec![BandwidthSpec::Paper { stay: 0.98 }; s.helpers])
        .seed(7)
        .build();
    NetConfig::from_sim(sim).with_track_estimate(false)
}

/// Times mesh construction and epoch processing (run + result
/// aggregation) separately: construction is allocation-bound (the learner
/// slabs), epochs are protocol-bound, and `perf_gate` gates both.
fn time_backend(s: &Scenario, backend: Backend) -> (f64, f64, NetOutcome) {
    // One-shot local; the size skew between runtimes is irrelevant here.
    #[allow(clippy::large_enum_variant)]
    enum Built {
        Threaded(rths_net::NetRuntime),
        Reactor(rths_net::ReactorRuntime),
    }
    let cfg = config(s).with_backend(backend);
    let t0 = Instant::now();
    let rt = match backend {
        Backend::Threaded => Built::Threaded(rths_net::NetRuntime::new(cfg)),
        Backend::Reactor => Built::Reactor(rths_net::ReactorRuntime::new(cfg)),
        // Multi-process runs go through `time_multiproc`: construction
        // overlaps the worker handshake, so the split timing here does
        // not apply.
        Backend::Multiproc { .. } => unreachable!("multiproc is timed by time_multiproc"),
    };
    let build_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let out = match rt {
        Built::Threaded(rt) => rt.run(s.epochs),
        Built::Reactor(rt) => rt.run(s.epochs),
    };
    let secs = t1.elapsed().as_secs_f64();
    (build_secs, secs, out)
}

/// Process counts measured for the multi-process reactor at the grid
/// points large enough to shard meaningfully (≥ [`MULTIPROC_MIN_ACTORS`]
/// actors — tens of shards at the default span).
const MULTIPROC_PROCESSES: [usize; 2] = [2, 4];

/// Smallest grid point that gets multi-process runs.
const MULTIPROC_MIN_ACTORS: usize = 20_000;

fn time_multiproc(s: &Scenario, processes: usize) -> Run {
    let t0 = Instant::now();
    let report = rths_net::run_multiproc(config(s), s.epochs, processes);
    let secs = t0.elapsed().as_secs_f64();
    Run {
        backend: format!("multiproc{processes}"),
        threads: rths_par::threads(),
        processes,
        construct: None,
        secs,
        actors_per_sec: (s.actors() as u64 * s.epochs) as f64 / secs.max(1e-12),
        rss_kb: Some((report.total_rss_kb(), report.max_rss_kb())),
        welfare_checksum: report.outcome.metrics.welfare.values().iter().sum(),
    }
}

fn main() {
    obs::init_from_env();
    if obs::enabled() {
        println!("rths_obs tracing enabled — throughput numbers are not baseline-comparable");
    }
    let quick = std::env::var("RTHS_BENCH_QUICK").is_ok_and(|v| v != "0");
    let large = std::env::var("RTHS_BENCH_LARGE").is_ok_and(|v| v != "0");
    let threads = rths_par::threads();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scenarios = grid(quick, large);
    println!(
        "BENCH_net — decentralized runtime throughput ({} scenarios, reactor threads {}, \
         {} host cores{}{})",
        scenarios.len(),
        threads,
        host_cores,
        if quick { ", quick mode" } else { "" },
        if large { ", +large grid point" } else { "" }
    );
    println!(
        "\n{:<6} {:>8} {:>7} {:>7} | {:>9} {:>8} {:>9} {:>9} {:>14} {:>12}",
        "peers",
        "helpers",
        "actors",
        "epochs",
        "backend",
        "threads",
        "build(s)",
        "secs",
        "actors/sec",
        "peakRSS(MB)"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"net_backend_grid\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"scenarios\": [");

    for (si, s) in scenarios.iter().enumerate() {
        let mut runs: Vec<Run> = Vec::new();
        let threaded_ok = s.actors() <= THREADED_ACTOR_CAP
            && (!quick || s.actors() <= QUICK_THREADED_ACTOR_CAP);
        if threaded_ok {
            let (construct_secs, secs, out) = time_backend(s, Backend::Threaded);
            runs.push(Run {
                backend: "threaded".to_string(),
                threads: 1, // one coordinator thread drives; actors are their own threads
                processes: 1,
                construct: Some((
                    construct_secs,
                    s.actors() as f64 / construct_secs.max(1e-12),
                )),
                secs,
                actors_per_sec: (s.actors() as u64 * s.epochs) as f64 / secs.max(1e-12),
                rss_kb: None,
                welfare_checksum: out.metrics.welfare.values().iter().sum(),
            });
        } else {
            let reason =
                if s.actors() > THREADED_ACTOR_CAP { "above cap" } else { "quick mode" };
            println!(
                "{:<6} {:>8} {:>7} {:>7} | {:>9} (skipped, {reason}: {} OS threads)",
                s.peers,
                s.helpers,
                s.actors(),
                s.epochs,
                "threaded",
                s.actors()
            );
        }
        let (construct_secs, secs, out) = time_backend(s, Backend::Reactor);
        runs.push(Run {
            backend: "reactor".to_string(),
            threads,
            processes: 1,
            construct: Some((construct_secs, s.actors() as f64 / construct_secs.max(1e-12))),
            secs,
            actors_per_sec: (s.actors() as u64 * s.epochs) as f64 / secs.max(1e-12),
            rss_kb: None,
            welfare_checksum: out.metrics.welfare.values().iter().sum(),
        });
        if s.actors() >= MULTIPROC_MIN_ACTORS {
            for processes in MULTIPROC_PROCESSES {
                runs.push(time_multiproc(s, processes));
            }
        }

        // Peak RSS right after the scenario's runs. VmHWM is a process
        // high-water mark (monotone); the grid runs smallest-first, so
        // the first scenario to raise it owns the number.
        let rss_kb = peak_rss_kb();
        let identical = runs
            .iter()
            .all(|r| r.welfare_checksum.to_bits() == runs[0].welfare_checksum.to_bits());
        for (ri, r) in runs.iter().enumerate() {
            if ri == 0 {
                print!("{:<6} {:>8} {:>7} {:>7} |", s.peers, s.helpers, s.actors(), s.epochs);
            } else {
                print!("{:<6} {:>8} {:>7} {:>7} |", "", "", "", "");
            }
            print!(
                " {:>9} {:>8} {:>9.3} {:>9.3} {:>14.0}",
                r.backend,
                r.threads,
                r.construct.map_or(0.0, |(cs, _)| cs),
                r.secs,
                r.actors_per_sec
            );
            if let Some((total, max)) = r.rss_kb {
                // Summed over the worker processes (max per process in
                // parentheses) — the scenario-level VmHWM below only
                // sees the parent.
                println!(" {:>8.0}Σ ({:.0})", total as f64 / 1024.0, max as f64 / 1024.0);
            } else if ri + 1 == runs.len() {
                println!(" {:>12.0}", rss_kb as f64 / 1024.0);
            } else {
                println!();
            }
        }
        assert!(identical, "backends diverged at {} actors", s.actors());

        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"peers\": {},", s.peers);
        let _ = writeln!(json, "      \"helpers\": {},", s.helpers);
        let _ = writeln!(json, "      \"actors\": {},", s.actors());
        let _ = writeln!(json, "      \"epochs\": {},", s.epochs);
        let _ = writeln!(json, "      \"peak_rss_kb\": {rss_kb},");
        let _ = writeln!(json, "      \"identical_output\": {identical},");
        let _ = writeln!(json, "      \"runs\": [");
        for (ri, r) in runs.iter().enumerate() {
            let mut line = format!(
                "        {{\"backend\": \"{}\", \"threads\": {}, \"processes\": {}",
                r.backend, r.threads, r.processes
            );
            if let Some((construct_secs, construct_aps)) = r.construct {
                let _ = write!(
                    line,
                    ", \"construct_secs\": {construct_secs:.6}, \
                     \"construct_actors_per_sec\": {construct_aps:.3}"
                );
            }
            let _ = write!(
                line,
                ", \"secs\": {:.6}, \"actors_per_sec\": {:.3}",
                r.secs, r.actors_per_sec
            );
            if let Some((total, max)) = r.rss_kb {
                let _ = write!(line, ", \"rss_total_kb\": {total}, \"rss_max_kb\": {max}");
            }
            let _ = writeln!(
                json,
                "{line}, \"welfare_checksum\": {:.6}}}{}",
                r.welfare_checksum,
                if ri + 1 < runs.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(json, "    }}{}", if si + 1 < scenarios.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let path = results_dir().join("BENCH_net.json");
    let mut file = std::fs::File::create(&path).expect("can create BENCH_net.json");
    file.write_all(json.as_bytes()).expect("can write BENCH_net.json");
    println!("\nbackend outputs identical per scenario; json: {}", path.display());
    if obs::enabled() {
        let (jsonl, chrome) = export_trace(&obs::take_report());
        println!("trace (last grid run): {} | {}", jsonl.display(), chrome.display());
    }
}
