//! Experiment ce-verify: quantitative check that converged RTHS play is
//! an approximate correlated equilibrium, compared against the exact CE
//! polytope computed by LP on a small instance.
//!
//! Run with: `cargo run --release -p rths-bench --bin ce_verify`

use rand::SeedableRng;
use rths_bench::write_csv;
use rths_core::{RepeatedGameDriver, RthsConfig, RthsLearner};
use rths_game::equilibrium::{cce_residual_congestion, ce_residual_congestion, max_welfare_ce};
use rths_game::HelperSelectionGame;

fn main() {
    println!("CE verification — 5 peers, 3 helpers [800, 800, 600] kbps\n");
    let caps = vec![800.0, 800.0, 600.0];
    let game = HelperSelectionGame::new(caps.clone()).with_peers(5);

    // Exact best CE (LP over 3^5 = 243 profiles).
    let ce = max_welfare_ce(&game).expect("CE LP solves");
    println!("exact max-welfare CE (LP, 243 profiles): welfare {:.0} kbps", ce.welfare());

    // Learned play, discarding the transient.
    let cfg =
        RthsConfig::builder(3).epsilon(0.01).delta(0.1).mu(4.0 * 2200.0 / 5.0).build().unwrap();
    let learners: Vec<RthsLearner> = (0..5).map(|_| RthsLearner::new(cfg.clone())).collect();
    let mut driver = RepeatedGameDriver::new(learners, caps.clone()).record_joint_from(2000);
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let result = driver.run(10_000, &mut rng);

    let report = ce_residual_congestion(&game, &result.joint);
    let cce = cce_residual_congestion(&game, &result.joint);
    let learned_welfare = result.welfare.tail_mean(2000);
    println!("\nlearned play over stages [2000, 10000):");
    println!("  distinct joint profiles observed: {}", result.joint.support_size());
    println!("  max CE residual:      {:.2} kbps", report.max_residual);
    println!("  max CCE residual:     {:.2} kbps (external regret)", cce.max_residual);
    println!("  mean utility:         {:.1} kbps", report.mean_utility);
    println!("  relative residual:    {:.4}", report.relative_residual());
    println!(
        "  welfare:              {:.0} kbps ({:.1}% of best CE)",
        learned_welfare,
        100.0 * learned_welfare / ce.welfare()
    );
    if let Some((i, j, k)) = report.worst {
        println!("  worst incentive: peer {i} playing helper {j} vs helper {k}");
    }
    println!(
        "\nverdict: play is an ε-CE with ε = {:.1} kbps (relative {:.2}%) — {}",
        report.max_residual,
        100.0 * report.relative_residual(),
        if report.relative_residual() < 0.1 {
            "converged to the CE set"
        } else {
            "NOT converged"
        }
    );

    let rows = vec![vec![
        report.max_residual,
        report.mean_utility,
        report.relative_residual(),
        learned_welfare,
        ce.welfare(),
    ]];
    let path = write_csv(
        "ce_verify",
        &[
            "max_residual",
            "mean_utility",
            "relative_residual",
            "learned_welfare",
            "best_ce_welfare",
        ],
        &rows,
    );
    println!("csv: {}", path.display());
}
