//! Perf regression gate: compares a fresh `BENCH_sim.json` (or
//! `BENCH_net.json`) against the committed baseline and fails on a large
//! throughput drop.
//!
//! Usage: `perf_gate <baseline.json> <fresh.json>`
//!
//! The report kind is detected from the `"bench"` header (both files
//! must agree).
//!
//! * `BENCH_sim`: scenarios are matched by
//!   `(engine, peers, helpers, channels)` and compared per thread count
//!   on `epochs_per_sec`; recorded peak RSS regressions warn but never
//!   fail, exactly as on the net path.
//! * `BENCH_net`: scenarios are matched by `(peers, helpers, actors)`
//!   and compared per backend on `actors_per_sec` **and** (when both
//!   reports carry it) `construct_actors_per_sec`, so a mesh-construction
//!   regression fails the gate like an epoch-throughput one; recorded
//!   peak RSS regressions above the threshold **warn but never fail** —
//!   memory is tracked for the trajectory, throughput is the gate.
//! * A drop of more than 30 % (override with
//!   `RTHS_PERF_GATE_MAX_REGRESSION`, a fraction) on any matched run
//!   fails the gate (exit 1).
//! * When the two reports were produced on hosts with different core
//!   counts the comparison is meaningless, so the gate **skips**
//!   (exit 0) — the committed baseline encodes its `host_cores`.
//! * Comparability is decided **per scenario** on the recorded epoch
//!   count: a quick-grid run executes 4× fewer epochs, so warm-up
//!   (scratch-buffer growth, page faults) is amortized over less work
//!   and throughput reads systematically low. Scenarios whose epoch
//!   counts differ are skipped individually; the ones that match — in
//!   particular the fixed-epoch truncated large-grid points the CI
//!   smoke job runs with `RTHS_BENCH_LARGE=1` — are gated even when the
//!   rest of the grids differ.

use rths_bench::{parse_bench_net, parse_bench_sim, BenchNetReport, BenchSimReport};

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn is_net_report(text: &str) -> bool {
    text.lines().take(5).any(|l| l.contains("\"bench\"") && l.contains("net_backend_grid"))
}

fn load_sim(path: &str, text: &str) -> BenchSimReport {
    parse_bench_sim(text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn load_net(path: &str, text: &str) -> BenchNetReport {
    parse_bench_net(text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "results/BENCH_sim.json".to_string());
    let fresh_path = args.next().expect("usage: perf_gate <baseline.json> <fresh.json>");
    let max_regression: f64 = std::env::var("RTHS_PERF_GATE_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.30);

    let baseline_text = read(&baseline_path);
    let fresh_text = read(&fresh_path);
    let (base_net, fresh_net) = (is_net_report(&baseline_text), is_net_report(&fresh_text));
    assert_eq!(
        base_net, fresh_net,
        "cannot compare a net report against a sim report ({baseline_path} vs {fresh_path})"
    );
    if base_net {
        gate_net(
            &baseline_path,
            load_net(&baseline_path, &baseline_text),
            &fresh_path,
            load_net(&fresh_path, &fresh_text),
            max_regression,
        );
        return;
    }
    let baseline = load_sim(&baseline_path, &baseline_text);
    let fresh = load_sim(&fresh_path, &fresh_text);

    println!(
        "perf gate: baseline {baseline_path} ({} cores) vs fresh {fresh_path} ({} cores), \
         threshold {:.0}%",
        baseline.host_cores,
        fresh.host_cores,
        max_regression * 100.0
    );
    if baseline.host_cores != fresh.host_cores {
        println!(
            "SKIP: core count differs (baseline {}, fresh {}) — epochs/sec is not comparable \
             across hosts; re-record the baseline on this machine to arm the gate",
            baseline.host_cores, fresh.host_cores
        );
        return;
    }
    if baseline.quick != fresh.quick {
        println!(
            "note: grid size differs (baseline quick={}, fresh quick={}) — only scenarios \
             with matching epoch counts are compared",
            baseline.quick, fresh.quick
        );
    }

    println!(
        "\n{:<15} {:>6} {:>8} {:>9} {:>8} {:>14} {:>14} {:>9}",
        "engine", "peers", "helpers", "channels", "threads", "base eps", "fresh eps", "ratio"
    );
    let mut compared = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for base_scenario in &baseline.scenarios {
        let Some(fresh_scenario) =
            fresh.scenarios.iter().find(|s| s.key() == base_scenario.key())
        else {
            println!(
                "{:<15} {:>6} {:>8} {:>9}  (not in fresh report — skipped)",
                base_scenario.engine,
                base_scenario.peers,
                base_scenario.helpers,
                base_scenario.channels
            );
            continue;
        };
        if base_scenario.epochs != fresh_scenario.epochs {
            println!(
                "{:<15} {:>6} {:>8} {:>9}  (epochs differ: baseline {}, fresh {} — skipped)",
                base_scenario.engine,
                base_scenario.peers,
                base_scenario.helpers,
                base_scenario.channels,
                base_scenario.epochs,
                fresh_scenario.epochs
            );
            continue;
        }
        for &(threads, base_eps) in &base_scenario.runs {
            let Some(fresh_eps) = fresh_scenario.epochs_per_sec(threads) else {
                continue;
            };
            let ratio = fresh_eps / base_eps.max(1e-12);
            compared += 1;
            let verdict = if ratio < 1.0 - max_regression { "FAIL" } else { "ok" };
            println!(
                "{:<15} {:>6} {:>8} {:>9} {:>8} {:>14.1} {:>14.1} {:>8.2}x {verdict}",
                base_scenario.engine,
                base_scenario.peers,
                base_scenario.helpers,
                base_scenario.channels,
                threads,
                base_eps,
                fresh_eps,
                ratio
            );
            if ratio < 1.0 - max_regression {
                failures.push(format!(
                    "{} peers={} threads={}: {:.1} -> {:.1} epochs/sec ({:.0}% drop)",
                    base_scenario.engine,
                    base_scenario.peers,
                    threads,
                    base_eps,
                    fresh_eps,
                    (1.0 - ratio) * 100.0
                ));
            }
        }
        // Peak RSS: warn-only (same policy as the net path) — memory is
        // tracked for the trajectory, throughput is the gate. Skipped
        // when either report predates the field (recorded as 0).
        if base_scenario.peak_rss_kb > 0 && fresh_scenario.peak_rss_kb > 0 {
            let rss_ratio =
                fresh_scenario.peak_rss_kb as f64 / base_scenario.peak_rss_kb as f64;
            if rss_ratio > 1.0 + max_regression {
                println!(
                    "WARN: {} peers={} peak RSS {} MB -> {} MB (+{:.0}%) — memory regression \
                     (warn-only; throughput is the gate)",
                    base_scenario.engine,
                    base_scenario.peers,
                    base_scenario.peak_rss_kb / 1024,
                    fresh_scenario.peak_rss_kb / 1024,
                    (rss_ratio - 1.0) * 100.0
                );
            }
        }
    }

    if compared == 0 {
        println!("\nSKIP: no comparable runs between the two reports");
        return;
    }
    if failures.is_empty() {
        println!("\nPASS: {compared} runs within {:.0}% of baseline", max_regression * 100.0);
    } else {
        println!("\nFAIL: {} of {compared} runs regressed past the threshold:", failures.len());
        for f in &failures {
            println!("  - {f}");
        }
        std::process::exit(1);
    }
}

/// The `BENCH_net` variant: actors/sec gates per backend, peak RSS only
/// warns (the memory trajectory is informational — a bigger grid point
/// legitimately raises the process high-water mark).
fn gate_net(
    baseline_path: &str,
    baseline: BenchNetReport,
    fresh_path: &str,
    fresh: BenchNetReport,
    max_regression: f64,
) {
    println!(
        "perf gate (net): baseline {baseline_path} ({} cores) vs fresh {fresh_path} \
         ({} cores), threshold {:.0}%",
        baseline.host_cores,
        fresh.host_cores,
        max_regression * 100.0
    );
    if baseline.host_cores != fresh.host_cores {
        println!(
            "SKIP: core count differs (baseline {}, fresh {}) — actors/sec is not comparable \
             across hosts; re-record the baseline on this machine to arm the gate",
            baseline.host_cores, fresh.host_cores
        );
        return;
    }
    if baseline.quick != fresh.quick {
        println!(
            "note: grid size differs (baseline quick={}, fresh quick={}) — only scenarios \
             with matching epoch counts are compared",
            baseline.quick, fresh.quick
        );
    }
    println!(
        "\n{:>7} {:>8} {:>7} {:>9} {:>14} {:>14} {:>9}",
        "peers", "helpers", "actors", "backend", "base a/s", "fresh a/s", "ratio"
    );
    let mut compared = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for base_scenario in &baseline.scenarios {
        let Some(fresh_scenario) =
            fresh.scenarios.iter().find(|s| s.key() == base_scenario.key())
        else {
            println!(
                "{:>7} {:>8} {:>7}  (not in fresh report — skipped)",
                base_scenario.peers, base_scenario.helpers, base_scenario.actors
            );
            continue;
        };
        if base_scenario.epochs != fresh_scenario.epochs {
            println!(
                "{:>7} {:>8} {:>7}  (epochs differ: baseline {}, fresh {} — skipped)",
                base_scenario.peers,
                base_scenario.helpers,
                base_scenario.actors,
                base_scenario.epochs,
                fresh_scenario.epochs
            );
            continue;
        }
        for base_run in &base_scenario.runs {
            // Match by backend *and* recorded thread count — a 4-thread
            // fresh run is not comparable with a 1-thread baseline.
            let Some(fresh_run) = fresh_scenario
                .runs
                .iter()
                .find(|r| r.backend == base_run.backend && r.threads == base_run.threads)
            else {
                continue;
            };
            let backend = &base_run.backend;
            let ratio = fresh_run.actors_per_sec / base_run.actors_per_sec.max(1e-12);
            compared += 1;
            let verdict = if ratio < 1.0 - max_regression { "FAIL" } else { "ok" };
            println!(
                "{:>7} {:>8} {:>7} {:>9} {:>14.0} {:>14.0} {:>8.2}x {verdict}",
                base_scenario.peers,
                base_scenario.helpers,
                base_scenario.actors,
                backend,
                base_run.actors_per_sec,
                fresh_run.actors_per_sec,
                ratio
            );
            if ratio < 1.0 - max_regression {
                failures.push(format!(
                    "{} actors {backend}: {:.0} -> {:.0} actors/sec ({:.0}% drop)",
                    base_scenario.actors,
                    base_run.actors_per_sec,
                    fresh_run.actors_per_sec,
                    (1.0 - ratio) * 100.0
                ));
            }
            // Construction throughput gates too (the learner-slab win);
            // skipped when either report predates the field.
            if let (Some(base_cps), Some(fresh_cps)) =
                (base_run.construct_actors_per_sec, fresh_run.construct_actors_per_sec)
            {
                let cratio = fresh_cps / base_cps.max(1e-12);
                compared += 1;
                let verdict = if cratio < 1.0 - max_regression { "FAIL" } else { "ok" };
                println!(
                    "{:>7} {:>8} {:>7} {:>9} {:>14.0} {:>14.0} {:>8.2}x {verdict} (construct)",
                    base_scenario.peers,
                    base_scenario.helpers,
                    base_scenario.actors,
                    backend,
                    base_cps,
                    fresh_cps,
                    cratio
                );
                if cratio < 1.0 - max_regression {
                    failures.push(format!(
                        "{} actors {backend}: {:.0} -> {:.0} construct actors/sec \
                         ({:.0}% drop)",
                        base_scenario.actors,
                        base_cps,
                        fresh_cps,
                        (1.0 - cratio) * 100.0
                    ));
                }
            }
            // Multi-process runs carry their own aggregated RSS (the
            // children never show in the scenario-level parent VmHWM):
            // same warn-only policy as the scenario figure.
            if let (Some(base_rss), Some(fresh_rss)) =
                (base_run.rss_total_kb, fresh_run.rss_total_kb)
            {
                if base_rss > 0 && fresh_rss as f64 > base_rss as f64 * (1.0 + max_regression) {
                    println!(
                        "WARN: {} actors {backend} summed RSS {} MB -> {} MB (+{:.0}%) — \
                         memory regression (warn-only; throughput is the gate)",
                        base_scenario.actors,
                        base_rss / 1024,
                        fresh_rss / 1024,
                        (fresh_rss as f64 / base_rss as f64 - 1.0) * 100.0
                    );
                }
            }
        }
        // Peak RSS: warn-only. A >threshold rise on a matched scenario
        // is worth eyes, never a red build.
        if base_scenario.peak_rss_kb > 0 && fresh_scenario.peak_rss_kb > 0 {
            let rss_ratio =
                fresh_scenario.peak_rss_kb as f64 / base_scenario.peak_rss_kb as f64;
            if rss_ratio > 1.0 + max_regression {
                println!(
                    "WARN: {} actors peak RSS {} MB -> {} MB (+{:.0}%) — memory regression \
                     (warn-only; throughput is the gate)",
                    base_scenario.actors,
                    base_scenario.peak_rss_kb / 1024,
                    fresh_scenario.peak_rss_kb / 1024,
                    (rss_ratio - 1.0) * 100.0
                );
            }
        }
    }
    if compared == 0 {
        println!("\nSKIP: no comparable runs between the two reports");
        return;
    }
    if failures.is_empty() {
        println!("\nPASS: {compared} runs within {:.0}% of baseline", max_regression * 100.0);
    } else {
        println!("\nFAIL: {} of {compared} runs regressed past the threshold:", failures.len());
        for f in &failures {
            println!("  - {f}");
        }
        std::process::exit(1);
    }
}
