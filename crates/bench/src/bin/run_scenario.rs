//! Runs one scenario from the zoo (or any `ScenarioSpec` TOML) and
//! writes its welfare and regret series as CSVs.
//!
//! Usage: `cargo run --release -p rths_bench --bin run_scenario -- <spec.toml>...`
//!
//! * `RTHS_SCENARIO_MAX_EPOCHS` — optional epoch cap; phases are
//!   truncated cumulatively (CI smoke runs set a small budget here).
//! * `RTHS_RESULTS_DIR` — where `<name>_welfare.csv` and
//!   `<name>_regret.csv` land (default `results/`).
//! * `RTHS_TRACE=1` (or a spec's `trace = true` knob) enables `rths_obs`
//!   tracing: the run additionally writes `<name>_trace.jsonl` and a
//!   Chrome-loadable `<name>_trace.json`, both validated on export.
//!   Traced runs are bit-identical to untraced ones.
//!
//! The welfare CSV always carries the per-epoch phase-timing column
//! group (`us_<phase>` for every `rths_obs::Phase`, in declaration
//! order); the columns are zero when tracing is off.

use std::collections::BTreeMap;

use rths_bench::{export_trace, print_series, sample_points, write_csv};
use rths_obs::{self as obs, TraceReport};
use rths_sim::ScenarioSpec;

fn main() {
    obs::init_from_env();
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: run_scenario <spec.toml>...");
        std::process::exit(2);
    }
    let cap = std::env::var("RTHS_SCENARIO_MAX_EPOCHS").ok().map(|v| {
        v.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("RTHS_SCENARIO_MAX_EPOCHS must be a positive integer, got `{v}`");
            std::process::exit(2);
        })
    });

    for path in &paths {
        let mut spec = match ScenarioSpec::load(path) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        };
        if let Some(cap) = cap {
            spec = spec.with_epoch_cap(cap);
        }
        println!(
            "scenario `{}` — {} epochs, seed {}\n  {}",
            spec.name(),
            spec.total_epochs(),
            spec.seed(),
            spec.description(),
        );

        let traced = obs::enabled() || spec.trace();
        let report = spec.run();
        // Drained unconditionally: an untraced run yields an empty
        // report, which pads the phase columns with zeros below.
        let trace = obs::take_report();

        let profile: BTreeMap<u64, Vec<u64>> = trace.epoch_profile().into_iter().collect();
        let profile_headers = TraceReport::profile_headers();
        let zeros = vec![0u64; profile_headers.len()];
        let mut headers = vec!["epoch", "welfare_kbps", "server_load_kbps"];
        headers.extend(profile_headers.iter().map(String::as_str));
        let welfare_rows: Vec<Vec<f64>> = report
            .welfare
            .iter()
            .zip(&report.server_load)
            .enumerate()
            .map(|(i, (&w, &s))| {
                let mut row = vec![i as f64, w, s];
                let us = profile.get(&(i as u64)).unwrap_or(&zeros);
                row.extend(us.iter().map(|&v| v as f64));
                row
            })
            .collect();
        let welfare_csv =
            write_csv(&format!("{}_welfare", report.name), &headers, &welfare_rows);

        // Multi-channel runs don't track the internal estimator; pad the
        // column with NaN so the CSV shape is uniform across the zoo.
        let regret_rows: Vec<Vec<f64>> = report
            .worst_empirical_regret
            .iter()
            .enumerate()
            .map(|(i, &e)| {
                let est = report.worst_regret_estimate.get(i).copied().unwrap_or(f64::NAN);
                vec![i as f64, e, est]
            })
            .collect();
        let regret_csv = write_csv(
            &format!("{}_regret", report.name),
            &["epoch", "empirical_regret", "estimate"],
            &regret_rows,
        );

        print_series("welfare (kbps)", ("epoch", "kbps"), &sample_points(&report.welfare, 16));
        println!(
            "  final population {}, tail welfare {:.1} kbps",
            report.final_population,
            report.welfare.iter().rev().take(20).sum::<f64>()
                / report.welfare.len().clamp(1, 20) as f64,
        );
        if traced {
            let (jsonl, chrome) = export_trace(&trace);
            println!("  trace: {} | {}", jsonl.display(), chrome.display());
        }
        println!("  csv: {} | {}\n", welfare_csv.display(), regret_csv.display());
    }
}
