//! Runs one scenario from the zoo (or any `ScenarioSpec` TOML) and
//! writes its welfare and regret series as CSVs.
//!
//! Usage: `cargo run --release -p rths_bench --bin run_scenario -- <spec.toml>...`
//!
//! * `RTHS_SCENARIO_MAX_EPOCHS` — optional epoch cap; phases are
//!   truncated cumulatively (CI smoke runs set a small budget here).
//! * `RTHS_RESULTS_DIR` — where `<name>_welfare.csv` and
//!   `<name>_regret.csv` land (default `results/`).

use rths_bench::{print_series, sample_points, write_csv};
use rths_sim::ScenarioSpec;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: run_scenario <spec.toml>...");
        std::process::exit(2);
    }
    let cap = std::env::var("RTHS_SCENARIO_MAX_EPOCHS").ok().map(|v| {
        v.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("RTHS_SCENARIO_MAX_EPOCHS must be a positive integer, got `{v}`");
            std::process::exit(2);
        })
    });

    for path in &paths {
        let mut spec = match ScenarioSpec::load(path) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        };
        if let Some(cap) = cap {
            spec = spec.with_epoch_cap(cap);
        }
        println!(
            "scenario `{}` — {} epochs, seed {}\n  {}",
            spec.name(),
            spec.total_epochs(),
            spec.seed(),
            spec.description(),
        );

        let report = spec.run();

        let welfare_rows: Vec<Vec<f64>> = report
            .welfare
            .iter()
            .zip(&report.server_load)
            .enumerate()
            .map(|(i, (&w, &s))| vec![i as f64, w, s])
            .collect();
        let welfare_csv = write_csv(
            &format!("{}_welfare", report.name),
            &["epoch", "welfare_kbps", "server_load_kbps"],
            &welfare_rows,
        );

        // Multi-channel runs don't track the internal estimator; pad the
        // column with NaN so the CSV shape is uniform across the zoo.
        let regret_rows: Vec<Vec<f64>> = report
            .worst_empirical_regret
            .iter()
            .enumerate()
            .map(|(i, &e)| {
                let est = report.worst_regret_estimate.get(i).copied().unwrap_or(f64::NAN);
                vec![i as f64, e, est]
            })
            .collect();
        let regret_csv = write_csv(
            &format!("{}_regret", report.name),
            &["epoch", "empirical_regret", "estimate"],
            &regret_rows,
        );

        print_series("welfare (kbps)", ("epoch", "kbps"), &sample_points(&report.welfare, 16));
        println!(
            "  final population {}, tail welfare {:.1} kbps",
            report.final_population,
            report.welfare.iter().rev().take(20).sum::<f64>()
                / report.welfare.len().clamp(1, 20) as f64,
        );
        println!("  csv: {} | {}\n", welfare_csv.display(), regret_csv.display());
    }
}
