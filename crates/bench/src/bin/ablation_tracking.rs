//! Ablation abl-track: regret *tracking* vs regret *matching* under a
//! mid-run capacity collapse (the design choice §II motivates).
//!
//! Run with: `cargo run --release -p rths-bench --bin ablation_tracking`

use rths_bench::write_csv;
use rths_sim::{Algorithm, LearnerSpec, Scenario, System};

fn degraded_series(out: &rths_sim::Outcome) -> Vec<f64> {
    (0..out.metrics.epochs())
        .map(|e| [0usize, 2, 4].iter().map(|&j| out.metrics.helper_loads[j].values()[e]).sum())
        .collect()
}

fn main() {
    let shift = 3000u64;
    let epochs = 6000u64;
    println!("Ablation — tracking vs matching; helpers 0/2/4 drop 900->100 kbps at {shift}");

    let run = |alg: Algorithm| {
        let config = Scenario::regime_shift(shift)
            .learner(LearnerSpec { algorithm: alg, ..LearnerSpec::default() })
            .seed(42)
            .build();
        System::new(config).run(epochs)
    };
    let algorithms = [Algorithm::Rths, Algorithm::RegretMatching, Algorithm::Exp3];
    let mut outs = rths_par::par_map(&algorithms, |_, &alg| run(alg)).into_iter();
    let (tracking, matching, exp3) =
        (outs.next().unwrap(), outs.next().unwrap(), outs.next().unwrap());
    let t = degraded_series(&tracking);
    let m = degraded_series(&matching);
    let x = degraded_series(&exp3);

    let rows: Vec<Vec<f64>> = (0..t.len()).map(|i| vec![i as f64, t[i], m[i], x[i]]).collect();
    let path = write_csv(
        "ablation_tracking",
        &["epoch", "tracking_degraded_load", "matching_degraded_load", "exp3_degraded_load"],
        &rows,
    );

    let s = shift as usize;
    let mean = |v: &[f64], lo: usize, hi: usize| rths_math::stats::mean(&v[lo..hi]);
    println!("\nload on degraded helpers (out of 60 peers):");
    println!("{:>22} {:>10} {:>10} {:>10}", "", "tracking", "matching", "exp3");
    for (label, lo, hi) in [
        ("pre-shift", s - 300, s),
        ("+300 epochs", s + 200, s + 400),
        ("+1000 epochs", s + 900, s + 1100),
        ("+3000 epochs (end)", epochs as usize - 300, epochs as usize),
    ] {
        println!(
            "{label:>22} {:>10.1} {:>10.1} {:>10.1}",
            mean(&t, lo, hi),
            mean(&m, lo, hi),
            mean(&x, lo, hi)
        );
    }
    let evac_t = mean(&t, s - 300, s) - mean(&t, s + 200, s + 400);
    let evac_m = mean(&m, s - 300, s) - mean(&m, s + 200, s + 400);
    println!("\npeers evacuated within 300 epochs: tracking {evac_t:.1}, matching {evac_m:.1} ({:.1}x)", evac_t / evac_m.max(0.1));
    println!("csv: {}", path.display());
}
