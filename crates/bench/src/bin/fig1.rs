//! Figure 1: evolution of the regret value of the worst player in a
//! large-scale scenario (N = 200 peers, |H| = 20 helpers).
//!
//! The paper: "the regret value approaches to the zero, when the
//! algorithm converges". We plot the worst peer's time-averaged true
//! regret (the quantity Hart & Mas-Colell's theorem controls), averaged
//! over 5 seeds, plus the learners' internal estimates for reference.
//!
//! Run with: `cargo run --release -p rths-bench --bin fig1`

use rths_bench::{mean_series, per_seed, print_series, sample_points, write_csv, SEEDS};
use rths_sim::{Scenario, System};

fn main() {
    let epochs = 3000u64;
    let seeds = &SEEDS[..5];
    println!(
        "Figure 1 — worst-player regret, N=200, H=20, levels [700,800,900], {} seeds",
        seeds.len()
    );

    let runs = per_seed(seeds, |seed| {
        let mut system = System::new(Scenario::paper_large().seed(seed).build());
        let out = system.run(epochs);
        (
            out.metrics.worst_empirical_regret.values().to_vec(),
            out.metrics.worst_regret_estimate.values().to_vec(),
            out.metrics.worst_empirical_regret.tail_mean(200),
        )
    });
    let mut empirical = Vec::new();
    let mut estimates = Vec::new();
    for (&seed, (emp, est, tail)) in seeds.iter().zip(runs) {
        println!("  seed {seed:>4}: start {:8.2} kbps -> end {tail:6.2} kbps", emp[10]);
        empirical.push(emp);
        estimates.push(est);
    }
    let mean_emp = mean_series(&empirical);
    let mean_est = mean_series(&estimates);

    let rows: Vec<Vec<f64>> = mean_emp
        .iter()
        .zip(&mean_est)
        .enumerate()
        .map(|(i, (&e, &q))| vec![i as f64, e, q])
        .collect();
    let path =
        write_csv("fig1_worst_regret", &["epoch", "empirical_regret", "estimate"], &rows);

    print_series(
        "worst-player empirical regret (mean over seeds)",
        ("epoch", "regret (kbps)"),
        &sample_points(&mean_emp, 24),
    );

    let early = rths_math::stats::mean(&mean_emp[20..120]);
    let late = rths_math::stats::mean(&mean_emp[mean_emp.len() - 300..]);
    println!(
        "\nsummary: early {early:.2} kbps -> late {late:.2} kbps ({:.1}x reduction)",
        early / late
    );
    println!(
        "paper's shape: regret decays toward zero — {}",
        if late < 0.35 * early { "REPRODUCED" } else { "NOT reproduced" }
    );
    println!("csv: {}", path.display());
}
