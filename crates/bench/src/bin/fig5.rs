//! Figure 5: "The real server workload against the minimum bandwidth
//! deficit of helpers."
//!
//! N = 10 peers each demanding 400 kbps (total 4000) against 4 helpers
//! whose minimum aggregate bandwidth is 2800 — so at least 1200 kbps must
//! always come from the server. The paper's claim: the real server load
//! stays close to that lower bound, i.e. helpers are utilized nearly
//! fully.
//!
//! Run with: `cargo run --release -p rths-bench --bin fig5`

use rths_bench::{mean_series, per_seed, print_series, sample_points, write_csv, SEEDS};
use rths_sim::{Scenario, System};

fn main() {
    let epochs = 5000u64;
    let seeds = &SEEDS[..5];
    println!("Figure 5 — server workload vs minimum bandwidth deficit, {} seeds", seeds.len());

    let runs = per_seed(seeds, |seed| {
        let mut system = System::new(Scenario::paper_server_load().seed(seed).build());
        let out = system.run(epochs);
        (
            out.metrics.server_load.values().to_vec(),
            out.metrics.min_deficit.values().to_vec(),
            out.metrics.current_deficit.values().to_vec(),
        )
    });
    let mut loads = Vec::new();
    let mut min_deficits = Vec::new();
    let mut cur_deficits = Vec::new();
    for (load, min_d, cur_d) in runs {
        loads.push(load);
        min_deficits.push(min_d);
        cur_deficits.push(cur_d);
    }
    let load = mean_series(&loads);
    let min_deficit = mean_series(&min_deficits);
    let cur_deficit = mean_series(&cur_deficits);

    let rows: Vec<Vec<f64>> = (0..load.len())
        .map(|i| vec![i as f64, load[i], min_deficit[i], cur_deficit[i]])
        .collect();
    let path = write_csv(
        "fig5_server_load",
        &["epoch", "server_load", "min_deficit", "current_deficit"],
        &rows,
    );

    print_series("server load (mean over seeds)", ("epoch", "kbps"), &sample_points(&load, 20));
    let tail_load = rths_math::stats::mean(&load[load.len() - 1000..]);
    let bound = min_deficit[0];
    println!("\ntotal demand:                 4000 kbps");
    println!("minimum bandwidth deficit:    {bound:6.0} kbps (= 4000 - 4x700)");
    println!(
        "converged real server load:   {tail_load:6.0} kbps ({:.2}x the bound)",
        tail_load / bound
    );
    println!(
        "paper's shape: real load close to the deficit bound — {}",
        if tail_load < 1.6 * bound { "REPRODUCED" } else { "NOT reproduced" }
    );
    println!("csv: {}", path.display());
}
