//! Learner-kernel microbenchmark: emits `BENCH_kernel.json`.
//!
//! Times the three hot learner operations — `observe` (the full stage
//! update: decay, rank-1 column update, Q-row, probability rule),
//! `select_action` (inverse-CDF sample), and `max_regret` (the `O(m²)`
//! proxy scan) — for the **scalar** per-peer layout
//! (`rths_core::RthsState`, one heap `Matrix` per learner) against the
//! **slab** layout (`rths_core::LearnerSlab`, column-major arena +
//! `rths_math::kernels`), at m ∈ {16, 64, 256} actions. Both paths
//! compute bit-identical results (pinned by the slab oracle tests), so
//! the ratio is pure layout/vectorization effect.
//!
//! Run with: `cargo run --release -p rths_bench --bin bench_kernel`
//!
//! * `RTHS_BENCH_QUICK=1` shrinks the iteration counts (CI smoke).
//! * Output lands in `results/BENCH_kernel.json` (see `RTHS_RESULTS_DIR`).
//!
//! A checksum accumulated from both paths is printed so the work cannot
//! be optimized away; wall-clock per-op nanoseconds are the metric.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rths_bench::results_dir;
use rths_core::{LearnerSlab, RthsConfig, RthsState};

/// Learners per arena — enough that the slab's locality matters and the
/// scalar path's pointer-chasing shows, small enough for quick mode.
const SLOTS: usize = 256;

struct Timing {
    observe_ns: f64,
    select_ns: f64,
    max_regret_ns: f64,
    checksum: f64,
}

fn config(m: usize) -> RthsConfig {
    RthsConfig::builder(m).mu(4.0 * 400.0).build().expect("valid benchmark config")
}

/// Drives `SLOTS` scalar learners for `stages` select/observe rounds and
/// a final `max_regret` sweep, timing each op class separately.
fn run_scalar(m: usize, stages: usize) -> Timing {
    let cfg = config(m);
    let mut learners: Vec<RthsState> = (0..SLOTS).map(|_| RthsState::new(&cfg)).collect();
    let mut rngs: Vec<StdRng> =
        (0..SLOTS).map(|i| StdRng::seed_from_u64(1000 + i as u64)).collect();
    let mut row = Vec::new();
    let mut checksum = 0.0f64;
    let mut observe_ns = 0.0;
    let mut select_ns = 0.0;
    for _ in 0..stages {
        let t0 = Instant::now();
        let mut choices = [0usize; SLOTS];
        for (i, l) in learners.iter_mut().enumerate() {
            choices[i] = l.select_action(&mut rngs[i]);
        }
        select_ns += t0.elapsed().as_nanos() as f64;
        let t1 = Instant::now();
        for (i, l) in learners.iter_mut().enumerate() {
            l.observe(&cfg, 100.0 + (choices[i] % 7) as f64, &mut row);
        }
        observe_ns += t1.elapsed().as_nanos() as f64;
    }
    let t2 = Instant::now();
    for l in &learners {
        checksum += l.max_regret(&cfg);
    }
    let max_regret_ns = t2.elapsed().as_nanos() as f64 / SLOTS as f64;
    checksum += learners.iter().map(|l| l.probabilities()[0]).sum::<f64>();
    let ops = (stages * SLOTS) as f64;
    Timing { observe_ns: observe_ns / ops, select_ns: select_ns / ops, max_regret_ns, checksum }
}

/// Same trajectory on one shared slab (identical seeds → identical float
/// work; the checksums must agree bitwise with the scalar run).
fn run_slab(m: usize, stages: usize) -> Timing {
    let cfg = config(m);
    let mut slab = LearnerSlab::with_capacity(m, SLOTS);
    for _ in 0..SLOTS {
        slab.alloc(m);
    }
    let mut rngs: Vec<StdRng> =
        (0..SLOTS).map(|i| StdRng::seed_from_u64(1000 + i as u64)).collect();
    let mut row = Vec::new();
    let mut checksum = 0.0f64;
    let mut observe_ns = 0.0;
    let mut select_ns = 0.0;
    let keep = 1.0 - cfg.epsilon();
    for _ in 0..stages {
        let t0 = Instant::now();
        let mut choices = [0usize; SLOTS];
        let mut cols = slab.split();
        for (i, choice) in choices.iter_mut().enumerate() {
            *choice = cols.select_action(i, &mut rngs[i]);
        }
        select_ns += t0.elapsed().as_nanos() as f64;
        let t1 = Instant::now();
        // The store's batched form: one decay sweep, then predecayed
        // per-slot updates (bit-identical to inline decay).
        cols.decay(keep);
        for (i, &choice) in choices.iter().enumerate() {
            cols.observe_predecayed(i, &cfg, 100.0 + (choice % 7) as f64, &mut row);
        }
        observe_ns += t1.elapsed().as_nanos() as f64;
    }
    let t2 = Instant::now();
    let mut diag = Vec::new();
    let mut cols = slab.split();
    for i in 0..SLOTS {
        checksum += cols.max_regret(i, &cfg, &mut diag);
    }
    let max_regret_ns = t2.elapsed().as_nanos() as f64 / SLOTS as f64;
    checksum += (0..SLOTS).map(|i| slab.probabilities(i)[0]).sum::<f64>();
    let ops = (stages * SLOTS) as f64;
    Timing { observe_ns: observe_ns / ops, select_ns: select_ns / ops, max_regret_ns, checksum }
}

fn main() {
    let quick = std::env::var("RTHS_BENCH_QUICK").is_ok_and(|v| v != "0");
    let stages = if quick { 60 } else { 400 };
    let arities = [16usize, 64, 256];
    println!(
        "BENCH_kernel — scalar vs slab learner kernels ({SLOTS} learners, {stages} stages{})",
        if quick { ", quick mode" } else { "" }
    );
    println!(
        "\n{:>5} {:>8} | {:>12} {:>12} {:>14} | {:>9}",
        "m", "layout", "observe(ns)", "select(ns)", "max_regret(ns)", "speedup"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"learner_kernel_grid\",");
    let _ = writeln!(
        json,
        "  \"host_cores\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"slots\": {SLOTS},");
    let _ = writeln!(json, "  \"stages\": {stages},");
    let _ = writeln!(json, "  \"arities\": [");

    for (ai, &m) in arities.iter().enumerate() {
        let scalar = run_scalar(m, stages);
        let slab = run_slab(m, stages);
        assert_eq!(
            scalar.checksum.to_bits(),
            slab.checksum.to_bits(),
            "scalar and slab paths diverged at m={m}"
        );
        let speedup = scalar.observe_ns / slab.observe_ns.max(1e-9);
        println!(
            "{m:>5} {:>8} | {:>12.0} {:>12.0} {:>14.0} |",
            "scalar", scalar.observe_ns, scalar.select_ns, scalar.max_regret_ns
        );
        println!(
            "{:>5} {:>8} | {:>12.0} {:>12.0} {:>14.0} | {speedup:>8.2}x",
            "", "slab", slab.observe_ns, slab.select_ns, slab.max_regret_ns
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"m\": {m},");
        let _ = writeln!(json, "      \"observe_speedup\": {speedup:.3},");
        let _ = writeln!(json, "      \"runs\": [");
        for (ri, (layout, t)) in [("scalar", &scalar), ("slab", &slab)].iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{\"layout\": \"{layout}\", \"observe_ns\": {:.1}, \
                 \"select_ns\": {:.1}, \"max_regret_ns\": {:.1}}}{}",
                t.observe_ns,
                t.select_ns,
                t.max_regret_ns,
                if ri == 0 { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(json, "    }}{}", if ai + 1 < arities.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let path = results_dir().join("BENCH_kernel.json");
    let mut file = std::fs::File::create(&path).expect("can create BENCH_kernel.json");
    file.write_all(json.as_bytes()).expect("can write BENCH_kernel.json");
    println!("\nscalar/slab checksums identical per arity; json: {}", path.display());
}
