//! Extension ext-mc: the multi-channel future-work system — joint
//! helper-level bandwidth allocation × peer-level helper selection.
//!
//! Run with: `cargo run --release -p rths-bench --bin ext_multichannel`

use rths_bench::write_csv;
use rths_sim::{AllocationPolicy, MultiChannelConfig, MultiChannelSystem};

fn main() {
    println!("Extension — multi-channel joint allocation: K=4 channels (Zipf 1.5),");
    println!("12 helpers x 2 channels, 240 viewers at 400 kbps, 2500 epochs\n");
    println!(
        "{:<22} {:>11} {:>11} {:>10} {:>9}",
        "allocation policy", "delivered", "server", "fairness", "regret"
    );
    println!("(learned = the future-work two-sided variant; a documented negative result)");
    let policies = [
        ("even split", AllocationPolicy::EvenSplit),
        ("load proportional", AllocationPolicy::LoadProportional),
        ("water filling", AllocationPolicy::WaterFilling),
        ("learned (RTHS helpers)", AllocationPolicy::Learned),
    ];
    // One allocation policy per worker.
    let outs = rths_par::par_map(&policies, |_, &(_, policy)| {
        let config = MultiChannelConfig::standard(4, 400.0, 12, 2, 240, 1.5, policy, 13);
        let mut system = MultiChannelSystem::new(config);
        system.run(2500)
    });
    let mut rows = Vec::new();
    for (idx, ((name, _), out)) in policies.iter().zip(&outs).enumerate() {
        let delivered = out.welfare.tail_mean(400);
        let server = out.server_load.tail_mean(400);
        let regret = out.worst_empirical_regret.tail_mean(400);
        println!(
            "{name:<22} {delivered:>9.0}k {server:>9.0}k {:>10.3} {regret:>9.1}",
            out.viewer_fairness
        );
        rows.push(vec![idx as f64, delivered, server, out.viewer_fairness, regret]);
    }
    let path = write_csv(
        "ext_multichannel",
        &["policy", "delivered", "server_load", "fairness", "regret"],
        &rows,
    );

    println!("\nper-channel view under water filling:");
    let config = MultiChannelConfig::standard(
        4,
        400.0,
        12,
        2,
        240,
        1.5,
        AllocationPolicy::WaterFilling,
        13,
    );
    let viewers = config.viewers.clone();
    let mut system = MultiChannelSystem::new(config);
    let out = system.run(2500);
    println!("{:>9} {:>9} {:>12} {:>11}", "channel", "viewers", "delivered", "continuity");
    for (c, &v) in viewers.iter().enumerate() {
        println!(
            "{c:>9} {v:>9} {:>10.0}k {:>11.2}",
            out.mean_channel_rates[c], out.channel_continuity[c]
        );
    }
    println!("csv: {}", path.display());
}
