//! Figure 4: "The upload bandwidth of helpers is evenly distributed
//! among peers" (N = 10, |H| = 4).
//!
//! We report each peer's lifetime mean received rate and Jain's fairness
//! index over those rates.
//!
//! Run with: `cargo run --release -p rths-bench --bin fig4`

use rths_bench::{per_seed, write_csv, SEEDS};
use rths_sim::{Scenario, System};

fn main() {
    let epochs = 5000u64;
    let seeds = &SEEDS[..10];
    println!("Figure 4 — per-peer bandwidth shares, N=10, H=4, {} seeds", seeds.len());

    let n = 10usize;
    let runs = per_seed(seeds, |seed| {
        let mut system = System::new(Scenario::paper_small().seed(seed).build());
        let out = system.run(epochs);
        (out.metrics.mean_peer_rates.clone(), out.metrics.long_run_fairness())
    });
    let mut per_peer: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut jains = Vec::new();
    for (rates, jain) in runs {
        for (i, &rate) in rates.iter().enumerate() {
            per_peer[i].push(rate);
        }
        jains.push(jain);
    }

    println!("\n{:>6} {:>12} {:>8} (fair share: 320 kbps)", "peer", "mean rate", "std");
    let mut rows = Vec::new();
    for (i, rates) in per_peer.iter().enumerate() {
        let mean = rths_math::stats::mean(rates);
        let std = rths_math::stats::std_dev(rates);
        println!("{i:>6} {mean:>12.1} {std:>8.1}");
        rows.push(vec![i as f64, mean, std]);
    }
    let path = write_csv("fig4_peer_rates", &["peer", "mean_rate_kbps", "std"], &rows);

    let jain = rths_math::stats::mean(&jains);
    println!("\nJain fairness index of long-run rates: {jain:.4} (1 = perfectly fair)");
    println!(
        "paper's shape: near-equal shares from the helper pool — {}",
        if jain > 0.95 { "REPRODUCED" } else { "NOT reproduced" }
    );
    println!("csv: {}", path.display());
}
