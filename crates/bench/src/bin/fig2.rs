//! Figure 2: RTHS vs the centralized MDP benchmark (N = 10, |H| = 4).
//!
//! The paper: "RTHS algorithm converges to the near-the-optimal solution
//! for the dynamic helper selection game." We plot per-epoch social
//! welfare (smoothed) against the exact occupation-measure optimum
//! `Σ_y π(y)·W*(y)` computed by `rths-mdp`.
//!
//! Run with: `cargo run --release -p rths-bench --bin fig2`

use rand::SeedableRng;
use rths_bench::{mean_series, per_seed, print_series, sample_points, write_csv, SEEDS};
use rths_mdp::MdpBenchmark;
use rths_sim::{Scenario, System};

fn main() {
    let epochs = 6000u64;
    let seeds = &SEEDS[..5];
    println!("Figure 2 — RTHS vs centralized MDP, N=10, H=4, {} seeds", seeds.len());

    // Exact benchmark: every helper follows the paper ladder with
    // stationary [0.25, 0.5, 0.25] -> optimum = Σ_j E[C_j] = 3200.
    let bench = MdpBenchmark::from_parts(
        vec![vec![700.0, 800.0, 900.0]; 4],
        vec![vec![0.25, 0.5, 0.25]; 4],
        10,
        None,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let optimum = bench.optimal_welfare(&mut rng);

    let runs = per_seed(seeds, |seed| {
        let mut system = System::new(Scenario::paper_small().seed(seed).build());
        system.run(epochs).metrics.welfare.values().to_vec()
    });
    let welfare = mean_series(&runs);
    // 100-epoch moving average for the plot (the paper plots smoothed
    // utility curves).
    let smooth: Vec<f64> = welfare
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let lo = i.saturating_sub(99);
            rths_math::stats::mean(&welfare[lo..=i])
        })
        .collect();

    let rows: Vec<Vec<f64>> =
        smooth.iter().enumerate().map(|(i, &w)| vec![i as f64, w, optimum]).collect();
    let path =
        write_csv("fig2_welfare_vs_mdp", &["epoch", "rths_welfare", "mdp_optimum"], &rows);

    print_series(
        "social welfare, 100-epoch moving average (mean over seeds)",
        ("epoch", "welfare (kbps)"),
        &sample_points(&smooth, 24),
    );
    let converged = rths_math::stats::mean(&smooth[smooth.len() - 1000..]);
    println!("\nMDP optimum:        {optimum:8.0} kbps");
    println!(
        "RTHS converged:     {converged:8.0} kbps  ({:.1}% of optimum)",
        100.0 * converged / optimum
    );
    println!(
        "paper's shape: near-optimal convergence — {}",
        if converged > 0.9 * optimum { "REPRODUCED" } else { "NOT reproduced" }
    );
    println!("csv: {}", path.display());
}
