//! Runs every figure/ablation binary's workload in-process and writes all
//! CSVs — the one-shot reproduction entry point.
//!
//! Run with: `cargo run --release -p rths-bench --bin all_figures`

use std::process::Command;

const TARGETS: [&str; 11] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "ablation_tracking",
    "ablation_oscillation",
    "ablation_params",
    "ablation_churn",
    "ablation_qoe",
    "ext_multichannel",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin dir");
    println!("reproducing all figures into ./results/ …\n");
    let mut failures = Vec::new();
    for target in TARGETS {
        println!("==================== {target} ====================");
        let path = bin_dir.join(target);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fallback: go through cargo when run via `cargo run`.
            Command::new("cargo")
                .args(["run", "--release", "-p", "rths-bench", "--bin", target])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => failures.push(format!("{target}: exit {s}")),
            Err(e) => failures.push(format!("{target}: {e}")),
        }
        println!();
    }
    println!("==================== ce_verify ====================");
    let path = bin_dir.join("ce_verify");
    let status = if path.exists() {
        Command::new(&path).status()
    } else {
        Command::new("cargo")
            .args(["run", "--release", "-p", "rths-bench", "--bin", "ce_verify"])
            .status()
    };
    if !matches!(status, Ok(s) if s.success()) {
        failures.push("ce_verify failed".into());
    }

    if failures.is_empty() {
        println!("\nall figure harnesses completed; CSVs in ./results/");
    } else {
        eprintln!("\nfailures: {failures:?}");
        std::process::exit(1);
    }
}
