//! Figure 3: "The RTHS algorithm evenly distribute loads on the
//! helpers" (N = 10, |H| = 4).
//!
//! We report the time-averaged number of peers per helper (with the
//! across-seed spread) and the load-balance coefficient of variation.
//!
//! Run with: `cargo run --release -p rths-bench --bin fig3`

use rths_bench::{per_seed, write_csv, SEEDS};
use rths_sim::{Scenario, System};

fn main() {
    let epochs = 5000u64;
    let seeds = &SEEDS[..10];
    println!("Figure 3 — load distribution on helpers, N=10, H=4, {} seeds", seeds.len());

    let h = 4usize;
    let runs = per_seed(seeds, |seed| {
        let mut system = System::new(Scenario::paper_small().seed(seed).build());
        let out = system.run(epochs);
        (out.metrics.mean_helper_loads.clone(), out.metrics.load_balance_cv())
    });
    let mut per_helper: Vec<Vec<f64>> = vec![Vec::new(); h];
    let mut cvs = Vec::new();
    for (loads, cv) in runs {
        for (j, &load) in loads.iter().enumerate() {
            per_helper[j].push(load);
        }
        cvs.push(cv);
    }

    println!("\n{:>8} {:>12} {:>8} (target: N/H = 2.5 each)", "helper", "mean load", "std");
    let mut rows = Vec::new();
    for (j, loads) in per_helper.iter().enumerate() {
        let mean = rths_math::stats::mean(loads);
        let std = rths_math::stats::std_dev(loads);
        println!("{j:>8} {mean:>12.3} {std:>8.3}");
        rows.push(vec![j as f64, mean, std]);
    }
    let path = write_csv("fig3_helper_loads", &["helper", "mean_load", "std"], &rows);

    let mean_cv = rths_math::stats::mean(&cvs);
    println!("\nload-balance coefficient of variation: {mean_cv:.4} (0 = perfectly even)");
    println!(
        "paper's shape: loads evenly distributed — {}",
        if mean_cv < 0.1 { "REPRODUCED" } else { "NOT reproduced" }
    );
    println!("csv: {}", path.display());
}
