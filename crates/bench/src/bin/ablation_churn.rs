//! Ablation abl-churn: helper outage/recovery under static and churning
//! populations, with and without the conditional-regret extension.
//!
//! Run with: `cargo run --release -p rths-bench --bin ablation_churn`

use rths_bench::write_csv;
use rths_sim::churn::FailureSchedule;
use rths_sim::{BandwidthSpec, LearnerSpec, SimConfig, System};
use rths_stoch::process::ChurnProcess;

struct Row {
    churn: bool,
    conditional: bool,
    healthy: f64,
    outage: f64,
    recovered: f64,
    jain: f64,
}

fn run(churn: bool, conditional: bool) -> Row {
    let churn_process = if churn { ChurnProcess::new(2.0, 0.02) } else { ChurnProcess::none() };
    let config = SimConfig::builder(100, vec![BandwidthSpec::Paper { stay: 0.98 }; 10])
        .churn(churn_process)
        .learner(LearnerSpec { conditional, ..LearnerSpec::default() })
        .seed(77)
        .build();
    let mut system = System::new(config);
    let schedule = FailureSchedule::new().fail_at(2000, 0).recover_at(3500, 0);
    let out = schedule.run(&mut system, 5000);

    let dead = out.metrics.helper_loads[0].values();
    let pop = out.metrics.population.values();
    let share = |lo: usize, hi: usize| {
        rths_math::stats::mean(&dead[lo..hi]) / rths_math::stats::mean(&pop[lo..hi])
    };
    Row {
        churn,
        conditional,
        healthy: share(1700, 2000),
        outage: share(3000, 3500),
        recovered: share(4700, 5000),
        jain: out.metrics.long_run_fairness(),
    }
}

fn main() {
    println!("Ablation — helper 0 outage [2000, 3500) then recovery, N≈100, H=10");
    println!("(share of online peers sitting on helper 0; exploration floor δ/H = 1%)\n");
    println!(
        "{:>6} {:>12} | {:>9} {:>9} {:>10} {:>7}",
        "churn", "conditional", "healthy", "outage", "recovered", "jain"
    );
    let combos = [(false, false), (false, true), (true, false), (true, true)];
    let results =
        rths_par::par_map(&combos, |_, &(churn, conditional)| run(churn, conditional));
    let mut rows = Vec::new();
    for r in results {
        println!(
            "{:>6} {:>12} | {:>8.1}% {:>8.1}% {:>9.1}% {:>7.3}",
            r.churn,
            r.conditional,
            100.0 * r.healthy,
            100.0 * r.outage,
            100.0 * r.recovered,
            r.jain
        );
        rows.push(vec![
            r.churn as u8 as f64,
            r.conditional as u8 as f64,
            r.healthy,
            r.outage,
            r.recovered,
            r.jain,
        ]);
    }
    let path = write_csv(
        "ablation_churn",
        &["churn", "conditional", "healthy_share", "outage_share", "recovered_share", "jain"],
        &rows,
    );
    println!("\nreading: the paper's literal update keeps peers flipping back to a dead");
    println!("helper (rarely-played rows carry frequency-weighted, near-zero proxy");
    println!("regret, yet inertia parks all residual mass on the last-played action);");
    println!("conditional normalisation (DESIGN.md §2) cuts the outage share roughly in");
    println!("half. Churn masks the effect partially because fresh peers start uniform.");
    println!("csv: {}", path.display());
}
