//! Ablation abl-osc: the §III.B oscillation counter-example.
//!
//! "Assume that in the first iteration, all peers are connected to the
//! helper h1. … all peers switch to the helper h2. But this simultaneous
//! switching makes the helper h2 over-loaded and all peers will switch
//! back … frequent interruption in the streaming flow." We reproduce the
//! flapping under synchronous best response and show RTHS converging to
//! a stable split on the same instance.
//!
//! Run with: `cargo run --release -p rths-bench --bin ablation_oscillation`

use rand::SeedableRng;
use rths_bench::write_csv;
use rths_core::{RepeatedGameDriver, RthsConfig, RthsLearner};
use rths_game::{best_response, HelperSelectionGame};

fn main() {
    let n = 20usize;
    let caps = vec![800.0, 800.0];
    let stages = 3000usize;
    println!(
        "Ablation — §III.B oscillation: {n} peers, two 800 kbps helpers, all start on h1\n"
    );

    // Myopic synchronous best response.
    let game = HelperSelectionGame::new(caps.clone());
    let trace = best_response::synchronous(&game, &vec![0usize; n], stages);
    let br_rate = trace.total_switches() as f64 / (n * trace.switches.len()) as f64;

    // RTHS on the same instance.
    let cfg = RthsConfig::builder(2).epsilon(0.01).delta(0.1).mu(4.0 * 80.0).build().unwrap();
    let learners: Vec<RthsLearner> = (0..n).map(|_| RthsLearner::new(cfg.clone())).collect();
    let mut driver = RepeatedGameDriver::new(learners, caps);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let result = driver.run(stages as u64, &mut rng);
    let switch_series = result.switches.values();

    let rows: Vec<Vec<f64>> = (0..stages)
        .map(|i| {
            let br = if trace.converged { 0.0 } else { n as f64 };
            vec![i as f64, br, switch_series.get(i).copied().unwrap_or(0.0)]
        })
        .collect();
    let path = write_csv(
        "ablation_oscillation",
        &["stage", "best_response_switches", "rths_switches"],
        &rows,
    );

    println!("synchronous best response:");
    println!("  converged: {}", trace.converged);
    println!("  switches per peer per stage: {br_rate:.3} (1.0 = everyone flaps every stage)");
    println!("  first profiles: all-h1 -> all-h2 -> all-h1 -> … (period-2 herd)");

    let early = rths_math::stats::mean(&switch_series[..200]) / n as f64;
    let late = result.switches.tail_mean(500) / n as f64;
    println!("\nRTHS:");
    println!("  switches per peer per stage: early {early:.3} -> converged {late:.3}");
    println!("  final mean loads: {:?} (stable near 10/10)", result.mean_loads);
    println!("\ninterruption ratio BR/RTHS at convergence: {:.0}x", br_rate / late.max(1e-6));
    println!("csv: {}", path.display());
}
