//! Ablation abl-param: sensitivity of convergence to ε (step size),
//! δ (exploration) and μ (normalisation).
//!
//! Run with: `cargo run --release -p rths-bench --bin ablation_params`

use rths_bench::write_csv;
use rths_sim::{BandwidthSpec, LearnerSpec, SimConfig, System};

fn run(epsilon: f64, delta: f64, mu: Option<f64>) -> (f64, f64, f64) {
    let config = SimConfig::builder(50, vec![BandwidthSpec::Paper { stay: 0.98 }; 5])
        .learner(LearnerSpec { epsilon, delta, mu, ..LearnerSpec::default() })
        .seed(31)
        .build();
    let mut system = System::new(config);
    let out = system.run(4000);
    (
        out.metrics.worst_empirical_regret.tail_mean(400),
        out.metrics.tail_welfare(400),
        out.metrics.switches.tail_mean(400) / 50.0,
    )
}

fn main() {
    println!("Ablation — parameter sensitivity, N=50, H=5 (4000 epochs, tail means)\n");
    println!(
        "{:>8} {:>8} {:>8} | {:>12} {:>12} {:>14}",
        "epsilon", "delta", "mu", "tail regret", "tail welfare", "switch rate"
    );
    let mut rows = Vec::new();

    // One (ε, δ, μ) point per worker; results come back in sweep order.
    let defaults = (0.01f64, 0.1f64);
    let eps_values = [0.002, 0.005, 0.01, 0.05, 0.2];
    let delta_values = [0.02, 0.05, 0.1, 0.2, 0.4];
    let mu_values = [80.0, 160.0, 320.0, 1280.0, 5120.0];
    let mut sweep: Vec<(f64, f64, Option<f64>)> = Vec::new();
    sweep.extend(eps_values.iter().map(|&eps| (eps, defaults.1, None)));
    sweep.extend(delta_values.iter().map(|&delta| (defaults.0, delta, None)));
    sweep.extend(mu_values.iter().map(|&mu| (defaults.0, defaults.1, Some(mu))));
    let results = rths_par::par_map(&sweep, |_, &(eps, delta, mu)| run(eps, delta, mu));

    for (i, (&(eps, delta, mu), &(r, w, s))) in sweep.iter().zip(&results).enumerate() {
        if i == eps_values.len() || i == eps_values.len() + delta_values.len() {
            println!();
        }
        match mu {
            None => {
                println!("{eps:>8} {delta:>8} {:>8} | {r:>12.2} {w:>12.0} {s:>14.3}", "auto")
            }
            Some(mu) => println!("{eps:>8} {delta:>8} {mu:>8} | {r:>12.2} {w:>12.0} {s:>14.3}"),
        }
        rows.push(vec![eps, delta, mu.unwrap_or(0.0), r, w, s]);
    }

    let path = write_csv(
        "ablation_params",
        &["epsilon", "delta", "mu", "tail_regret", "tail_welfare", "switch_rate"],
        &rows,
    );
    println!("\nreading: small ε lowers the regret floor (estimator noise ~ ε·m/δ) but slows");
    println!("tracking; δ trades exploration overhead for estimator stability; μ must sit");
    println!("within an order of magnitude of the per-peer rate scale (here 320 kbps).");
    println!("csv: {}", path.display());
}
