//! Criterion: cost of the exact solvers backing the centralized
//! benchmark — the simplex LP, the occupation-measure LP, and the greedy
//! vs DP assignment optimizers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rths_lp::{LinearProgram, Relation};
use rths_mdp::assignment::{optimal_loads, optimal_loads_dp};
use rths_mdp::occupation::OccupationLp;
use rths_mdp::welfare::expected_optimal_welfare_exact;

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/simplex_dense");
    for n in [5usize, 15, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                // Assignment-like LP: n variables, n box rows + 1 budget.
                let costs: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
                let mut lp = LinearProgram::maximize(costs);
                for i in 0..n {
                    let mut row = vec![0.0; n];
                    row[i] = 1.0;
                    lp.add_constraint(row, Relation::Le, 2.0).unwrap();
                }
                lp.add_constraint(vec![1.0; n], Relation::Le, n as f64).unwrap();
                lp.solve().unwrap().objective()
            });
        });
    }
    group.finish();
}

fn bench_occupation_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdp/occupation_lp");
    group.sample_size(10);
    group.bench_function("h2_l2_n3", |b| {
        b.iter(|| {
            let lp = OccupationLp::new(
                vec![vec![700.0, 900.0], vec![800.0]],
                vec![vec![0.5, 0.5], vec![1.0]],
                3,
                None,
            );
            lp.solve().unwrap().welfare
        });
    });
    group.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdp/assignment");
    for n in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, &n| {
            let caps: Vec<f64> = (0..20).map(|j| 500.0 + (j * 37 % 400) as f64).collect();
            b.iter(|| optimal_loads(&caps, n, Some(400.0)).welfare);
        });
    }
    for n in [10usize, 100] {
        group.bench_with_input(BenchmarkId::new("dp", n), &n, |b, &n| {
            let caps: Vec<f64> = (0..20).map(|j| 500.0 + (j * 37 % 400) as f64).collect();
            b.iter(|| optimal_loads_dp(&caps, n, Some(400.0)).welfare);
        });
    }
    group.finish();
}

fn bench_expected_welfare(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdp/expected_welfare_exact");
    group.sample_size(10);
    for h in [4usize, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            let levels = vec![vec![700.0, 800.0, 900.0]; h];
            let pi = vec![vec![0.25, 0.5, 0.25]; h];
            b.iter(|| expected_optimal_welfare_exact(&levels, &pi, 10, Some(400.0), 100_000));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simplex,
    bench_occupation_lp,
    bench_assignment,
    bench_expected_welfare
);
criterion_main!(benches);
