//! Criterion: simulator throughput as the system scales.
//!
//! Measures cost per epoch for growing peer populations (the dominant
//! axis) and for the multi-channel engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rths_sim::{
    AllocationPolicy, BandwidthSpec, MultiChannelConfig, MultiChannelSystem, Scenario,
    SimConfig, System,
};

fn bench_epoch_vs_peers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/epoch_cost_vs_peers");
    for n in [10usize, 50, 200, 500] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let config = SimConfig::builder(
                n,
                vec![BandwidthSpec::Paper { stay: 0.98 }; (n / 10).max(2)],
            )
            .seed(1)
            .build();
            let mut system = System::new(config);
            b.iter(|| system.step_epoch());
        });
    }
    group.finish();
}

fn bench_paper_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/paper_scenarios");
    group.bench_function("small_n10_h4_epoch", |b| {
        let mut system = System::new(Scenario::paper_small().seed(2).build());
        b.iter(|| system.step_epoch());
    });
    group.bench_function("large_n200_h20_epoch", |b| {
        let mut system = System::new(Scenario::paper_large().seed(3).build());
        b.iter(|| system.step_epoch());
    });
    group.finish();
}

fn bench_multichannel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/multichannel_epoch");
    for viewers in [60usize, 240] {
        group.bench_with_input(
            BenchmarkId::from_parameter(viewers),
            &viewers,
            |b, &viewers| {
                let config = MultiChannelConfig::standard(
                    4,
                    400.0,
                    12,
                    2,
                    viewers,
                    1.0,
                    AllocationPolicy::WaterFilling,
                    4,
                );
                let mut system = MultiChannelSystem::new(config);
                b.iter(|| {
                    system.run(1);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_epoch_vs_peers, bench_paper_scenarios, bench_multichannel);
criterion_main!(benches);
