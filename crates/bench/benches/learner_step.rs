//! Criterion: per-stage cost of the learners.
//!
//! Measures the `select_action` + `observe` cycle for the recursive R2HS
//! learner (Algorithm 2, `O(m²)` per stage), the history-based RTHS
//! (Algorithm 1, `O(n·m²)` per stage — the cost the paper's recursive
//! re-expression removes), and the regret-matching baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rths_core::{HistoryRths, Learner, RegretMatchingLearner, RthsConfig, RthsLearner};

fn config(m: usize) -> RthsConfig {
    RthsConfig::builder(m).epsilon(0.01).delta(0.1).mu(1280.0).build().unwrap()
}

fn bench_recursive(c: &mut Criterion) {
    let mut group = c.benchmark_group("learner_step/recursive_r2hs");
    for m in [2usize, 4, 8, 20, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let mut learner = RthsLearner::new(config(m));
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| {
                let a = learner.select_action(&mut rng);
                learner.observe(100.0 + a as f64);
                learner.max_regret()
            });
        });
    }
    group.finish();
}

fn bench_history(c: &mut Criterion) {
    let mut group = c.benchmark_group("learner_step/history_rths");
    group.sample_size(10);
    for m in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            // History cost grows with the stage count; bench at a fixed
            // 500-stage history to show the O(n·m²) burden.
            let mut learner = HistoryRths::new(config(m));
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            for _ in 0..500 {
                let a = learner.select_action(&mut rng);
                learner.observe(100.0 + a as f64);
            }
            b.iter(|| {
                let a = learner.select_action(&mut rng);
                learner.observe(100.0 + a as f64);
                learner.max_regret()
            });
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("learner_step/regret_matching");
    for m in [4usize, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let mut learner = RegretMatchingLearner::new(config(m)).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            b.iter(|| {
                let a = learner.select_action(&mut rng);
                learner.observe(100.0 + a as f64);
                learner.max_regret()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recursive, bench_history, bench_matching);
criterion_main!(benches);
