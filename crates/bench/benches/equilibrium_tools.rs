//! Criterion: cost of the equilibrium tooling — CE verification at scale
//! (the fast congestion path) and the exact CE LP on small games.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rand::SeedableRng;
use rths_game::equilibrium::{ce_residual_congestion, max_welfare_ce};
use rths_game::{HelperSelectionGame, JointDistribution};

fn bench_ce_residual(c: &mut Criterion) {
    let mut group = c.benchmark_group("equilibrium/ce_residual_congestion");
    for (n, h, profiles) in [(10usize, 4usize, 1000usize), (200, 20, 1000)] {
        let label = format!("n{n}_h{h}_s{profiles}");
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let caps: Vec<f64> = (0..h).map(|j| 700.0 + (j % 3) as f64 * 100.0).collect();
            let game = HelperSelectionGame::new(caps).with_peers(n);
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let mut dist = JointDistribution::new();
            for _ in 0..profiles {
                let profile: Vec<usize> = (0..n).map(|_| rng.gen_range(0..h)).collect();
                dist.record(&profile);
            }
            b.iter(|| ce_residual_congestion(&game, &dist).max_residual);
        });
    }
    group.finish();
}

fn bench_exact_ce_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("equilibrium/exact_ce_lp");
    group.sample_size(10);
    for (n, h) in [(3usize, 2usize), (4, 2), (3, 3)] {
        let label = format!("n{n}_h{h}");
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let caps: Vec<f64> = (0..h).map(|j| 800.0 - 100.0 * j as f64).collect();
            let game = HelperSelectionGame::new(caps).with_peers(n);
            b.iter(|| max_welfare_ce(&game).unwrap().welfare());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ce_residual, bench_exact_ce_lp);
criterion_main!(benches);
