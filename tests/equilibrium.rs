//! Cross-crate equilibrium tests: learned play lands in the CE set and
//! beats myopic baselines.

use rths_core::{RepeatedGameDriver, RthsConfig, RthsLearner};
use rths_game::equilibrium::{ce_residual_congestion, max_welfare_ce, nash_loads};
use rths_game::{best_response, Game, HelperSelectionGame};
use rths_stoch::rng::seeded_rng;

fn learners(n: usize, h: usize, mu: f64) -> Vec<RthsLearner> {
    let cfg = RthsConfig::builder(h).epsilon(0.01).delta(0.1).mu(mu).build().unwrap();
    (0..n).map(|_| RthsLearner::new(cfg.clone())).collect()
}

/// The paper's central claim: the empirical joint play of RTHS peers
/// converges to the correlated-equilibrium set.
#[test]
fn learned_play_is_approximate_ce() {
    let caps = vec![800.0, 800.0, 600.0];
    let mut driver = RepeatedGameDriver::new(learners(9, 3, 4.0 * 245.0), caps.clone())
        .record_joint_from(2000);
    let mut rng = seeded_rng(11);
    let result = driver.run(8000, &mut rng);
    let report = result.ce_report(caps);
    assert!(
        report.relative_residual() < 0.10,
        "relative CE residual too high: {:.3}",
        report.relative_residual()
    );
}

/// The converged welfare is comparable to the best correlated
/// equilibrium's welfare (computed exactly by LP on a small instance).
#[test]
fn learned_welfare_near_best_ce() {
    let caps = vec![800.0, 600.0];
    let game = HelperSelectionGame::new(caps.clone()).with_peers(4);
    let ce = max_welfare_ce(&game).unwrap();
    assert!((ce.welfare() - 1400.0).abs() < 1e-6);

    let mut driver = RepeatedGameDriver::new(learners(4, 2, 4.0 * 350.0), caps);
    let mut rng = seeded_rng(12);
    let result = driver.run(6000, &mut rng);
    let tail = result.welfare.tail_mean(800);
    assert!(
        tail > 0.9 * ce.welfare(),
        "welfare {tail:.0} below 90% of best CE {:.0}",
        ce.welfare()
    );
}

/// §III.B: synchronous best response oscillates forever, RTHS does not.
/// The comparison metric is helper switches per peer per stage — the
/// streaming-interruption proxy.
#[test]
fn rths_avoids_best_response_oscillation() {
    let caps = vec![800.0, 800.0];
    let n = 20usize;
    let game = HelperSelectionGame::new(caps.clone());

    // Myopic baseline: everyone flaps every stage.
    let trace = best_response::synchronous(&game, &vec![0usize; n], 200);
    assert!(!trace.converged);
    let br_switch_rate =
        trace.total_switches() as f64 / (n as f64 * trace.switches.len() as f64);
    assert!(br_switch_rate > 0.99, "baseline did not oscillate: {br_switch_rate}");

    // RTHS: after convergence, switching is rare.
    let mut driver = RepeatedGameDriver::new(learners(n, 2, 4.0 * 80.0), caps);
    let mut rng = seeded_rng(13);
    let result = driver.run(4000, &mut rng);
    let tail_switches = result.switches.tail_mean(500) / n as f64;
    assert!(
        tail_switches < 0.25,
        "RTHS switch rate too high: {tail_switches:.3} per peer per stage"
    );
    assert!(br_switch_rate > 4.0 * tail_switches);
}

/// The long-run loads under RTHS lean toward the Nash/CE load split on
/// asymmetric capacities (more peers on bigger helpers). The δ-floor
/// exploration and estimator noise keep the split softer than the exact
/// 6/2 NE — the CE set is larger than the NE set — so the assertion is
/// directional with a quantitative margin.
#[test]
fn loads_track_capacity_ratio() {
    let caps = vec![900.0, 300.0];
    let game = HelperSelectionGame::new(caps.clone());
    let ne_loads = nash_loads(&game, 8);
    assert_eq!(ne_loads, vec![6, 2]);

    let mut driver = RepeatedGameDriver::new(learners(8, 2, 4.0 * 150.0), caps);
    let mut rng = seeded_rng(14);
    let result = driver.run(12_000, &mut rng);
    let big = result.mean_loads[0];
    let small = result.mean_loads[1];
    assert!(big > small + 1.2, "no lean toward the big helper: mean loads {big:.2}/{small:.2}");
    assert!(big > 4.5, "big helper load {big:.2} too low (NE is 6)");
    assert!(small < 3.5, "small helper load {small:.2} too high (NE is 2)");
}

/// Sanity: social welfare at any observed profile equals the sum of busy
/// helpers' capacities — confirming the game wiring between crates.
#[test]
fn welfare_identity_via_joint_distribution() {
    let caps = vec![700.0, 500.0];
    let game = HelperSelectionGame::new(caps.clone()).with_peers(3);
    let mut driver = RepeatedGameDriver::new(learners(3, 2, 1600.0), caps.clone());
    let mut rng = seeded_rng(15);
    let result = driver.run(500, &mut rng);
    for (profile, _) in result.joint.iter() {
        let w = game.social_welfare(profile);
        let loads = game.loads(profile);
        let expected: f64 =
            loads.iter().zip(&caps).map(|(&n, &c)| if n > 0 { c } else { 0.0 }).sum();
        assert!((w - expected).abs() < 1e-9);
    }
    // CE residual machinery agrees between weighted and raw computation.
    let report = ce_residual_congestion(&game, &result.joint);
    assert!(report.max_residual.is_finite());
}
