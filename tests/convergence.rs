//! End-to-end convergence tests mirroring the paper's five figures.
//!
//! Each test asserts the *shape* the corresponding figure reports; the
//! bench binaries in `rths-bench` regenerate the full series.

use rand::SeedableRng;
use rths_mdp::MdpBenchmark;
use rths_sim::{Scenario, System};
use rths_stoch::bandwidth::MarkovBandwidth;

/// Fig. 1: the worst peer's regret approaches zero in the large-scale
/// scenario (N=200, H=20).
#[test]
fn fig1_worst_regret_decays_at_scale() {
    let mut system = System::new(Scenario::paper_large().seed(101).build());
    let out = system.run(2500);
    let series = out.metrics.worst_empirical_regret;
    let early = rths_math::stats::mean(&series.values()[20..120]);
    let late = series.tail_mean(300);
    assert!(
        late < early * 0.35,
        "regret did not decay enough: early {early:.1}, late {late:.1}"
    );
    // Late regret is small relative to the ~80 kbps per-peer rate scale.
    assert!(late < 15.0, "late regret {late:.1} too high");
}

/// Fig. 2: RTHS social welfare approaches the centralized MDP optimum in
/// the small-scale scenario (N=10, H=4).
#[test]
fn fig2_rths_near_mdp_optimum() {
    let mut system = System::new(Scenario::paper_small().seed(202).build());
    let out = system.run(6000);

    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut seed_rng = rths_stoch::rng::seeded_rng(999);
    let helpers: Vec<MarkovBandwidth> =
        (0..4).map(|_| MarkovBandwidth::paper_default(&mut seed_rng)).collect();
    let bench = MdpBenchmark::from_processes(&helpers, 10, None);
    let optimum = bench.optimal_welfare(&mut rng);
    assert!((optimum - 3200.0).abs() < 1e-6);

    let achieved = out.metrics.tail_welfare(1000);
    let ratio = achieved / optimum;
    assert!(
        ratio > 0.90,
        "RTHS reached only {:.1}% of the MDP optimum ({achieved:.0}/{optimum:.0})",
        ratio * 100.0
    );
}

/// Fig. 3: load is (close to) evenly distributed across equal-capacity
/// helpers.
#[test]
fn fig3_even_load_distribution() {
    let mut system = System::new(Scenario::paper_small().seed(303).build());
    let out = system.run(5000);
    let loads = &out.metrics.mean_helper_loads;
    assert_eq!(loads.len(), 4);
    let cv = rths_math::stats::coefficient_of_variation(loads);
    assert!(cv < 0.12, "helper loads too uneven: {loads:?} (cv {cv:.3})");
    // Mean load per helper is N/H = 2.5.
    for &l in loads {
        assert!((l - 2.5).abs() < 0.5, "load {l} far from 2.5");
    }
}

/// Fig. 4: helper bandwidth is (close to) evenly distributed across
/// peers — Jain index near 1 on long-run rates.
#[test]
fn fig4_fair_bandwidth_shares() {
    let mut system = System::new(Scenario::paper_small().seed(404).build());
    let out = system.run(5000);
    let jain = out.metrics.long_run_fairness();
    assert!(jain > 0.95, "long-run fairness too low: {jain:.3}");
    // All peers within ±25% of the 320 kbps fair share.
    for &r in &out.metrics.mean_peer_rates {
        assert!((r - 320.0).abs() < 80.0, "peer rate {r:.0} far from fair share");
    }
}

/// Fig. 5: the real server workload stays close to (and above) the
/// minimum bandwidth deficit of the helpers.
#[test]
fn fig5_server_load_tracks_deficit() {
    let mut system = System::new(Scenario::paper_server_load().seed(505).build());
    let out = system.run(5000);
    // Demand 4000; min helper bandwidth 4×700 = 2800 → min deficit 1200.
    let min_deficit = out.metrics.min_deficit.values()[0];
    assert!((min_deficit - 1200.0).abs() < 1e-9);
    let tail_load = out.metrics.tail_server_load(1000);
    // Load is lower-bounded by the current-capacity deficit and should
    // converge close to it: within 25% of the minimum-deficit line.
    assert!(tail_load >= min_deficit * 0.9);
    assert!(
        tail_load < min_deficit * 1.6,
        "server load {tail_load:.0} far above deficit bound {min_deficit:.0}"
    );
    // And helpers save the server most of the total demand.
    assert!(tail_load < 0.5 * 4000.0);
}

/// Convergence is robust across seeds (no cherry-picking).
#[test]
fn convergence_holds_across_seeds() {
    for seed in [1u64, 17, 23456] {
        let mut system = System::new(Scenario::paper_small().seed(seed).build());
        let out = system.run(4000);
        let late = out.metrics.worst_empirical_regret.tail_mean(400);
        assert!(late < 40.0, "seed {seed}: late regret {late:.1}");
        let welfare = out.metrics.tail_welfare(400);
        assert!(welfare > 2850.0, "seed {seed}: welfare {welfare:.0}");
    }
}
