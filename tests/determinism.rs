//! Workspace-level determinism regression tests.
//!
//! The golden tests in `tests/golden.rs` pin exact values, but a pin only
//! catches drift *between* commits. These tests catch nondeterminism
//! *within* one binary: every seeded subsystem — the single-channel
//! simulator, the threaded actor runtime, and the multi-channel engine —
//! is run twice from identical configs and must agree exactly, per epoch,
//! not just in aggregate. Any use of unseeded entropy, iteration-order
//! dependence (e.g. hashing), or cross-thread ordering leaks fails here
//! long before a golden constant needs re-pinning.

use rths_net::{NetConfig, NetRuntime};
use rths_sim::{
    AllocationPolicy, BandwidthSpec, MultiChannelConfig, MultiChannelSystem, Scenario,
    SimConfig, System,
};

#[test]
fn simulator_golden_scenario_is_deterministic_per_epoch() {
    let run = || {
        let mut system = System::new(Scenario::paper_small().seed(42).build());
        system.run(50)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.metrics.welfare.values(), b.metrics.welfare.values());
    assert_eq!(a.metrics.server_load.values(), b.metrics.server_load.values());
    assert_eq!(
        a.metrics.worst_empirical_regret.values(),
        b.metrics.worst_empirical_regret.values()
    );
    for (x, y) in a.metrics.helper_loads.iter().zip(&b.metrics.helper_loads) {
        assert_eq!(x.values(), y.values());
    }
}

#[test]
fn simulator_is_deterministic_across_configs_built_twice() {
    // Building the config twice must also be deterministic (no entropy in
    // builders), not just running the same instance twice.
    let build =
        || SimConfig::builder(8, vec![BandwidthSpec::Paper { stay: 0.95 }; 3]).seed(7).build();
    let mut first = System::new(build());
    let mut second = System::new(build());
    assert_eq!(first.run(40).metrics.welfare.values(), second.run(40).metrics.welfare.values());
}

#[test]
fn threaded_runtime_is_deterministic_per_epoch() {
    // The actor runtime multiplexes real OS threads; the epoch barrier must
    // make scheduling order unobservable.
    let run = || {
        let sim =
            SimConfig::builder(6, vec![BandwidthSpec::Paper { stay: 0.9 }; 2]).seed(11).build();
        NetRuntime::new(NetConfig::from_sim(sim)).run(30)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.metrics.welfare.values(), b.metrics.welfare.values());
    assert_eq!(a.metrics.server_load.values(), b.metrics.server_load.values());
}

#[test]
fn multichannel_engine_is_deterministic_per_epoch() {
    let run = || {
        let config = MultiChannelConfig::standard(
            4,
            400.0,
            6,
            2,
            30,
            1.0,
            AllocationPolicy::WaterFilling,
            13,
        );
        MultiChannelSystem::new(config).run(25)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.welfare.values(), b.welfare.values());
    assert_eq!(a.server_load.values(), b.server_load.values());
    assert_eq!(a.mean_channel_rates, b.mean_channel_rates);
    assert_eq!(a.viewer_fairness, b.viewer_fairness);
}
