//! The simulator, the threaded actor runtime, the reactor event-loop
//! runtime, and the multi-process reactor implement the *same system*:
//! with identical seeds and no faults all four must agree
//! **bit-for-bit**, because every actor owns the same deterministic RNG
//! stream in every implementation and the epoch protocol is a barrier.
//! The comparison is `f64::to_bits` equality — not approximate — and is
//! repeated at `RTHS_THREADS=1` and `2`, since neither the simulator's
//! fork/join parallelism nor the reactor's sharded mailbox draining may
//! perturb a single bit. The multi-process runs split the mesh across 2
//! and 4 OS processes (at a small shard span so these CI-sized meshes
//! actually cross process boundaries); shard-span invariance is pinned
//! separately by `rths_reactor`'s tests, so the comparison against the
//! default-span engines is exact, not incidental.
//!
//! This is the strongest cross-implementation test in the workspace: any
//! divergence in learner updates, rate allocation, or metric arithmetic
//! between `rths-sim`, `rths-net`'s threaded backend, its reactor
//! backend, or the socket-bridged multi-process reactor fails it.

use rths_net::{Backend, NetConfig, NetOutcome};
use rths_sim::{BandwidthSpec, ImpairmentPlan, Scenario, SimConfig, System};

/// Pins `RTHS_THREADS` for the duration of `f` via the workspace's one
/// sanctioned env-mutation helper ([`rths_par::env::with_var`]): the
/// backends' spawned worker threads read the variable themselves, so the
/// thread-local `rths_par::with_threads` override cannot reach them, and
/// a bare `set_var` here would race the other tests in this binary.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    rths_par::env::with_var("RTHS_THREADS", Some(&n.to_string()), f)
}

/// Bit-pattern view of a float series: equality here is exact, with no
/// tolerance to hide a drifting reduction order.
fn bits(series: &[f64]) -> Vec<u64> {
    series.iter().map(|v| v.to_bits()).collect()
}

fn assert_outcome_matches_sim(
    backend: &str,
    threads: usize,
    sim_out: &rths_sim::Outcome,
    net_out: &NetOutcome,
) {
    let tag = format!("{backend} backend, RTHS_THREADS={threads}");
    assert_eq!(sim_out.epochs, net_out.epochs, "{tag}: epoch counts diverged");
    assert_eq!(
        bits(sim_out.metrics.welfare.values()),
        bits(net_out.metrics.welfare.values()),
        "{tag}: welfare trajectory diverged"
    );
    assert_eq!(
        bits(sim_out.metrics.server_load.values()),
        bits(net_out.metrics.server_load.values()),
        "{tag}: server load series diverged"
    );
    assert_eq!(
        bits(sim_out.metrics.jain.values()),
        bits(net_out.metrics.jain.values()),
        "{tag}: Jain fairness series diverged"
    );
    for (j, (a, b)) in
        sim_out.metrics.helper_loads.iter().zip(&net_out.metrics.helper_loads).enumerate()
    {
        assert_eq!(
            bits(a.values()),
            bits(b.values()),
            "{tag}: helper {j} load series diverged"
        );
    }
    assert_eq!(
        bits(sim_out.metrics.worst_empirical_regret.values()),
        bits(net_out.metrics.worst_empirical_regret.values()),
        "{tag}: empirical regret series diverged"
    );
    // The estimate series is learner-derived on both sides (the peers
    // attach their virtual-play Q maxima to observations; the simulator
    // scans the same compact state) — it must agree bit-for-bit too.
    assert_eq!(
        bits(sim_out.metrics.worst_regret_estimate.values()),
        bits(net_out.metrics.worst_regret_estimate.values()),
        "{tag}: regret estimate series diverged"
    );
    // Final per-peer summaries.
    assert_eq!(
        bits(&sim_out.metrics.mean_peer_rates),
        bits(&net_out.peer_mean_rates),
        "{tag}: per-peer mean rates diverged"
    );
    assert_eq!(
        bits(&sim_out.metrics.peer_continuity),
        bits(&net_out.peer_continuity),
        "{tag}: per-peer continuity diverged"
    );
}

/// Shard span for the multi-process runs: small enough that even the
/// ~16-actor paper scenarios split into several shards and therefore
/// into genuinely separate processes.
const MULTIPROC_SPAN: usize = 4;

/// The acceptance gate: sim, threaded net, reactor net, and the
/// multi-process reactor (2 and 4 processes) must produce identical
/// trajectories at every tested worker count.
fn assert_equivalent(sim_config: SimConfig, epochs: u64) {
    for threads in [1usize, 2] {
        with_threads(threads, || {
            let mut sim = System::new(sim_config.clone());
            let sim_out = sim.run(epochs);
            let threaded = rths_net::run(NetConfig::from_sim(sim_config.clone()), epochs);
            let reactor = rths_net::run(
                NetConfig::from_sim(sim_config.clone()).with_backend(Backend::Reactor),
                epochs,
            );
            assert_outcome_matches_sim("threaded", threads, &sim_out, &threaded);
            assert_outcome_matches_sim("reactor", threads, &sim_out, &reactor);
            // The two net backends also agree on message accounting —
            // same protocol, different transport.
            assert_eq!(
                threaded.messages, reactor.messages,
                "RTHS_THREADS={threads}: message accounting diverged between backends"
            );
            for processes in [2usize, 4] {
                let report = rths_net::run_multiproc_with_span(
                    NetConfig::from_sim(sim_config.clone()),
                    epochs,
                    processes,
                    MULTIPROC_SPAN,
                );
                assert_outcome_matches_sim(
                    &format!("multiproc({processes})"),
                    threads,
                    &sim_out,
                    &report.outcome,
                );
                assert_eq!(
                    reactor.messages, report.outcome.messages,
                    "RTHS_THREADS={threads}, {processes} processes: \
                     message accounting diverged from the reactor"
                );
            }
        });
    }
}

#[test]
fn equivalent_on_paper_small() {
    assert_equivalent(Scenario::paper_small().seed(42).build(), 150);
}

#[test]
fn equivalent_with_demand_cap() {
    assert_equivalent(Scenario::paper_server_load().seed(7).build(), 120);
}

#[test]
fn equivalent_with_heterogeneous_processes() {
    let config = SimConfig::builder(
        9,
        vec![
            BandwidthSpec::Paper { stay: 0.9 },
            BandwidthSpec::Constant(650.0),
            BandwidthSpec::GilbertElliott { good: 900.0, bad: 300.0, p_gb: 0.05, p_bg: 0.2 },
        ],
    )
    .seed(99)
    .build();
    assert_equivalent(config, 200);
}

#[test]
fn equivalent_on_a_reactor_scale_population() {
    // Big enough that the reactor actually shards rounds across workers
    // (above rths_par's MIN_PARALLEL_ITEMS) while staying CI-cheap for
    // the thread-per-actor backend.
    let config =
        SimConfig::builder(96, vec![BandwidthSpec::Paper { stay: 0.95 }; 6]).seed(1234).build();
    assert_equivalent(config, 60);
}

#[test]
fn jitter_does_not_change_results() {
    // Timing jitter reorders thread interleavings (threaded backend) or
    // delays tick delivery through the timer wheel (reactor backend);
    // the barrier protocol must absorb it completely on both.
    let config = Scenario::paper_small().seed(5).build();
    let clean = rths_net::run(NetConfig::from_sim(config.clone()), 60);
    let jitter_plan =
        ImpairmentPlan::builder(0).build().expect("empty plan is valid").with_jitter(200);
    for backend in [Backend::Threaded, Backend::Reactor] {
        let jittery = rths_net::run(
            NetConfig::from_sim(config.clone())
                .with_backend(backend)
                .with_impairments(jitter_plan.clone()),
            60,
        );
        assert_eq!(
            bits(clean.metrics.welfare.values()),
            bits(jittery.metrics.welfare.values()),
            "jitter changed outcomes on {backend:?} — barrier protocol is leaky"
        );
    }
}

#[test]
fn equivalent_under_gilbert_elliott_and_token_bucket() {
    // The impairment layer is shared state *and* shared code: the fault
    // draw, the Gilbert-Elliott channel walk, and the token-bucket level
    // are all pure functions of (plan seed, link, epoch), so a lossy,
    // rate-shaped run must stay bit-identical across all three engines
    // and at every worker count. This is the acceptance gate for the
    // impairment layer itself.
    let plan = ImpairmentPlan::builder(21)
        .gilbert_loss(0.05, 0.35, 0.85, 0.1)
        .token_bucket(400.0, 900.0)
        .build()
        .expect("valid impairment plan");
    let config = SimConfig::builder(10, vec![BandwidthSpec::Paper { stay: 0.95 }; 3])
        .demand(350.0)
        .seed(13)
        .impairment(plan)
        .build();
    assert_equivalent(config, 120);
}

#[test]
fn equivalent_under_full_impairment_stack() {
    // Everything at once: bursty loss, a link-bandwidth Markov chain,
    // token-bucket policing, latency, and jitter. Latency and jitter are
    // absorbed by the epoch barrier; the rest must shape rates
    // identically in the sequential simulator and both net runtimes.
    let plan = ImpairmentPlan::builder(77)
        .gilbert_loss(0.02, 0.25, 0.9, 0.15)
        .token_bucket(500.0, 1200.0)
        .link_bandwidth(vec![250.0, 500.0, 900.0], 0.9)
        .latency(vec![1, 3], 0.8)
        .build()
        .expect("valid impairment plan")
        .with_jitter(150);
    let config = SimConfig::builder(8, vec![BandwidthSpec::Paper { stay: 0.9 }; 3])
        .demand(400.0)
        .seed(29)
        .impairment(plan)
        .build();
    assert_equivalent(config, 90);
}
