//! The simulator and the threaded actor runtime implement the *same
//! system*: with identical seeds and no faults they must agree
//! bit-for-bit, because every actor owns the same deterministic RNG
//! stream in both implementations and the epoch protocol is a barrier.
//!
//! This is the strongest cross-implementation test in the workspace: any
//! divergence in learner updates, rate allocation, or metric arithmetic
//! between `rths-sim` and `rths-net` fails it.

use rths_net::{FaultPlan, NetConfig, NetRuntime};
use rths_sim::{BandwidthSpec, Scenario, SimConfig, System};

fn assert_equivalent(sim_config: SimConfig, epochs: u64) {
    let mut sim = System::new(sim_config.clone());
    let sim_out = sim.run(epochs);
    let net_out = NetRuntime::new(NetConfig::from_sim(sim_config)).run(epochs);

    assert_eq!(sim_out.epochs, net_out.epochs);
    // Per-epoch series must match exactly.
    assert_eq!(
        sim_out.metrics.welfare.values(),
        net_out.metrics.welfare.values(),
        "welfare series diverged"
    );
    assert_eq!(
        sim_out.metrics.server_load.values(),
        net_out.metrics.server_load.values(),
        "server load series diverged"
    );
    for (j, (a, b)) in
        sim_out.metrics.helper_loads.iter().zip(&net_out.metrics.helper_loads).enumerate()
    {
        assert_eq!(a.values(), b.values(), "helper {j} load series diverged");
    }
    assert_eq!(
        sim_out.metrics.worst_empirical_regret.values(),
        net_out.metrics.worst_empirical_regret.values(),
        "empirical regret series diverged"
    );
    // Final per-peer summaries.
    assert_eq!(sim_out.metrics.mean_peer_rates, net_out.peer_mean_rates);
    assert_eq!(sim_out.metrics.peer_continuity, net_out.peer_continuity);
}

#[test]
fn equivalent_on_paper_small() {
    assert_equivalent(Scenario::paper_small().seed(42).build(), 150);
}

#[test]
fn equivalent_with_demand_cap() {
    assert_equivalent(Scenario::paper_server_load().seed(7).build(), 120);
}

#[test]
fn equivalent_with_heterogeneous_processes() {
    let config = SimConfig::builder(
        9,
        vec![
            BandwidthSpec::Paper { stay: 0.9 },
            BandwidthSpec::Constant(650.0),
            BandwidthSpec::GilbertElliott { good: 900.0, bad: 300.0, p_gb: 0.05, p_bg: 0.2 },
        ],
    )
    .seed(99)
    .build();
    assert_equivalent(config, 200);
}

#[test]
fn jitter_does_not_change_results() {
    // Timing jitter reorders thread interleavings but the barrier protocol
    // must absorb it completely.
    let config = Scenario::paper_small().seed(5).build();
    let clean = NetRuntime::new(NetConfig::from_sim(config.clone())).run(60);
    let jittery = NetRuntime::new(
        NetConfig::from_sim(config).with_faults(FaultPlan::none().with_jitter(200)),
    )
    .run(60);
    assert_eq!(
        clean.metrics.welfare.values(),
        jittery.metrics.welfare.values(),
        "jitter changed outcomes — barrier protocol is leaky"
    );
}
