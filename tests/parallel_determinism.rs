//! The parallel runtime's contract: `RTHS_THREADS` changes wall-clock
//! time, never results. Both engines are run at 1, 2, and 4 workers —
//! and, separately, at 1, 2, and 4 pinned peer-store *shards* — and
//! every recorded series must be **bit-for-bit** identical (`f64::to_bits`
//! equality, not tolerance) — the property every golden/trajectory-pinned
//! test in this repository relies on.
//!
//! Thread sweeps use the scoped `rths_par::with_threads` override
//! (thread-local, so no racy `std::env::set_var`); the `RTHS_THREADS`
//! environment variable stays the outermost default.
//!
//! Populations are kept above `rths_par::MIN_PARALLEL_ITEMS` so the
//! multi-worker runs genuinely exercise the pool rather than the inline
//! fallback.

use rths_suite::par::with_threads;
use rths_suite::sim::{
    AllocationPolicy, BandwidthSpec, LearnerSpec, MultiChannelConfig, MultiChannelSystem,
    Outcome, SimConfig, System,
};
use rths_suite::stoch::process::ChurnProcess;

#[track_caller]
fn assert_bit_identical(label: &str, threads: usize, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{label}: length diverged at {threads} threads");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}[{i}]: {x} != {y} at {threads} threads vs sequential"
        );
    }
}

fn single_channel_outcome() -> Outcome {
    // Big enough to engage the pool, with demand (residual/server path),
    // churn (population changes across epochs), and the conditional
    // learner extension all exercised.
    let config = SimConfig::builder(200, vec![BandwidthSpec::Paper { stay: 0.98 }; 12])
        .demand(60.0)
        .churn(ChurnProcess::new(1.0, 0.005))
        .learner(LearnerSpec { conditional: true, ..LearnerSpec::default() })
        .seed(4242)
        .build();
    System::new(config).run(400)
}

#[test]
fn system_outcome_is_thread_count_invariant() {
    let sequential = with_threads(1, single_channel_outcome);
    for threads in [2usize, 4] {
        let parallel = with_threads(threads, single_channel_outcome);
        assert_eq!(parallel.epochs, sequential.epochs);
        assert_eq!(parallel.final_population, sequential.final_population);
        let pairs: [(&str, &[f64], &[f64]); 7] = [
            ("welfare", parallel.metrics.welfare.values(), sequential.metrics.welfare.values()),
            (
                "server_load",
                parallel.metrics.server_load.values(),
                sequential.metrics.server_load.values(),
            ),
            ("jain", parallel.metrics.jain.values(), sequential.metrics.jain.values()),
            (
                "worst_empirical_regret",
                parallel.metrics.worst_empirical_regret.values(),
                sequential.metrics.worst_empirical_regret.values(),
            ),
            (
                "population",
                parallel.metrics.population.values(),
                sequential.metrics.population.values(),
            ),
            (
                "mean_peer_rates",
                &parallel.metrics.mean_peer_rates,
                &sequential.metrics.mean_peer_rates,
            ),
            ("final_capacities", &parallel.final_capacities, &sequential.final_capacities),
        ];
        for (label, par_series, seq_series) in pairs {
            assert_bit_identical(label, threads, par_series, seq_series);
        }
        for (j, (par_loads, seq_loads)) in parallel
            .metrics
            .helper_loads
            .iter()
            .zip(&sequential.metrics.helper_loads)
            .enumerate()
        {
            assert_bit_identical(
                &format!("helper_loads[{j}]"),
                threads,
                par_loads.values(),
                seq_loads.values(),
            );
        }
    }
}

fn multi_channel_outcome(policy: AllocationPolicy) -> rths_suite::sim::MultiChannelOutcome {
    let config = MultiChannelConfig::standard(8, 400.0, 24, 3, 240, 1.2, policy, 99);
    MultiChannelSystem::new(config).run(300)
}

/// The SoA peer stores' second axis: the pinned **shard count** must not
/// change results either, independently of the worker count executing the
/// shards. Sweeps both engines at 1, 2 and 4 shards (worker count left at
/// the ambient default, so CI's `RTHS_THREADS=2` leg exercises
/// shards ≠ workers).
#[test]
fn engines_are_shard_count_invariant() {
    let single = |shards: usize| {
        let config = SimConfig::builder(150, vec![BandwidthSpec::Paper { stay: 0.98 }; 8])
            .demand(80.0)
            .churn(ChurnProcess::new(0.6, 0.004))
            .seed(1717)
            .build();
        let mut sys = System::new(config);
        sys.set_shards(Some(shards));
        let out = sys.run(250);
        (
            out.metrics.welfare.values().to_vec(),
            out.metrics.worst_empirical_regret.values().to_vec(),
            out.metrics.mean_peer_rates,
            out.metrics.population.values().to_vec(),
        )
    };
    let multi = |shards: usize| {
        let config = MultiChannelConfig::standard(
            6,
            400.0,
            18,
            2,
            180,
            1.3,
            AllocationPolicy::WaterFilling,
            55,
        );
        let mut sys = MultiChannelSystem::new(config);
        sys.set_shards(Some(shards));
        let out = sys.run(200);
        (
            out.welfare.values().to_vec(),
            out.worst_empirical_regret.values().to_vec(),
            out.mean_channel_rates,
            out.viewer_fairness,
        )
    };
    let single_base = single(1);
    let multi_base = multi(1);
    for shards in [2usize, 4] {
        let s = single(shards);
        assert_bit_identical("single/welfare", shards, &s.0, &single_base.0);
        assert_bit_identical("single/worst_emp", shards, &s.1, &single_base.1);
        assert_bit_identical("single/mean_peer_rates", shards, &s.2, &single_base.2);
        assert_bit_identical("single/population", shards, &s.3, &single_base.3);
        let m = multi(shards);
        assert_bit_identical("multi/welfare", shards, &m.0, &multi_base.0);
        assert_bit_identical("multi/worst_emp", shards, &m.1, &multi_base.1);
        assert_bit_identical("multi/mean_channel_rates", shards, &m.2, &multi_base.2);
        assert_eq!(
            m.3.to_bits(),
            multi_base.3.to_bits(),
            "multi/viewer_fairness at {shards} shards"
        );
    }
}

#[test]
fn multichannel_outcome_is_thread_count_invariant() {
    for policy in [AllocationPolicy::WaterFilling, AllocationPolicy::Learned] {
        let sequential = with_threads(1, || multi_channel_outcome(policy));
        for threads in [2usize, 4] {
            let parallel = with_threads(threads, || multi_channel_outcome(policy));
            assert_eq!(parallel.epochs, sequential.epochs, "{policy:?}");
            assert_eq!(
                parallel.viewer_fairness.to_bits(),
                sequential.viewer_fairness.to_bits(),
                "{policy:?} viewer_fairness at {threads} threads"
            );
            let pairs: [(&str, &[f64], &[f64]); 5] = [
                ("welfare", parallel.welfare.values(), sequential.welfare.values()),
                ("server_load", parallel.server_load.values(), sequential.server_load.values()),
                (
                    "worst_empirical_regret",
                    parallel.worst_empirical_regret.values(),
                    sequential.worst_empirical_regret.values(),
                ),
                (
                    "mean_channel_rates",
                    &parallel.mean_channel_rates,
                    &sequential.mean_channel_rates,
                ),
                (
                    "channel_continuity",
                    &parallel.channel_continuity,
                    &sequential.channel_continuity,
                ),
            ];
            for (label, par_series, seq_series) in pairs {
                assert_bit_identical(
                    &format!("{policy:?}/{label}"),
                    threads,
                    par_series,
                    seq_series,
                );
            }
        }
    }
}
