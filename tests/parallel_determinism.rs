//! The parallel runtime's contract: `RTHS_THREADS` changes wall-clock
//! time, never results. Both engines are run at 1, 2, and 4 workers and
//! every recorded series must be **bit-for-bit** identical (`f64::to_bits`
//! equality, not tolerance) — the property every golden/trajectory-pinned
//! test in this repository relies on.
//!
//! Populations are kept above `rths_par::MIN_PARALLEL_ITEMS` so the
//! multi-worker runs genuinely exercise the pool rather than the inline
//! fallback.

use std::sync::Mutex;

use rths_suite::sim::{
    AllocationPolicy, BandwidthSpec, LearnerSpec, MultiChannelConfig, MultiChannelSystem,
    Outcome, SimConfig, System,
};
use rths_suite::stoch::process::ChurnProcess;

/// Serializes tests that mutate the process-global `RTHS_THREADS`.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    // Restore (not delete) the ambient value afterwards — CI runs the
    // suite with RTHS_THREADS=2 and later tests must still see it.
    let prior = std::env::var("RTHS_THREADS").ok();
    std::env::set_var("RTHS_THREADS", n.to_string());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    match prior {
        Some(value) => std::env::set_var("RTHS_THREADS", value),
        None => std::env::remove_var("RTHS_THREADS"),
    }
    match result {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[track_caller]
fn assert_bit_identical(label: &str, threads: usize, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{label}: length diverged at {threads} threads");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}[{i}]: {x} != {y} at {threads} threads vs sequential"
        );
    }
}

fn single_channel_outcome() -> Outcome {
    // Big enough to engage the pool, with demand (residual/server path),
    // churn (population changes across epochs), and the conditional
    // learner extension all exercised.
    let config = SimConfig::builder(200, vec![BandwidthSpec::Paper { stay: 0.98 }; 12])
        .demand(60.0)
        .churn(ChurnProcess::new(1.0, 0.005))
        .learner(LearnerSpec { conditional: true, ..LearnerSpec::default() })
        .seed(4242)
        .build();
    System::new(config).run(400)
}

#[test]
fn system_outcome_is_thread_count_invariant() {
    let sequential = with_threads(1, single_channel_outcome);
    for threads in [2usize, 4] {
        let parallel = with_threads(threads, single_channel_outcome);
        assert_eq!(parallel.epochs, sequential.epochs);
        assert_eq!(parallel.final_population, sequential.final_population);
        let pairs: [(&str, &[f64], &[f64]); 7] = [
            ("welfare", parallel.metrics.welfare.values(), sequential.metrics.welfare.values()),
            (
                "server_load",
                parallel.metrics.server_load.values(),
                sequential.metrics.server_load.values(),
            ),
            ("jain", parallel.metrics.jain.values(), sequential.metrics.jain.values()),
            (
                "worst_empirical_regret",
                parallel.metrics.worst_empirical_regret.values(),
                sequential.metrics.worst_empirical_regret.values(),
            ),
            (
                "population",
                parallel.metrics.population.values(),
                sequential.metrics.population.values(),
            ),
            (
                "mean_peer_rates",
                &parallel.metrics.mean_peer_rates,
                &sequential.metrics.mean_peer_rates,
            ),
            ("final_capacities", &parallel.final_capacities, &sequential.final_capacities),
        ];
        for (label, par_series, seq_series) in pairs {
            assert_bit_identical(label, threads, par_series, seq_series);
        }
        for (j, (par_loads, seq_loads)) in parallel
            .metrics
            .helper_loads
            .iter()
            .zip(&sequential.metrics.helper_loads)
            .enumerate()
        {
            assert_bit_identical(
                &format!("helper_loads[{j}]"),
                threads,
                par_loads.values(),
                seq_loads.values(),
            );
        }
    }
}

fn multi_channel_outcome(policy: AllocationPolicy) -> rths_suite::sim::MultiChannelOutcome {
    let config = MultiChannelConfig::standard(8, 400.0, 24, 3, 240, 1.2, policy, 99);
    MultiChannelSystem::new(config).run(300)
}

#[test]
fn multichannel_outcome_is_thread_count_invariant() {
    for policy in [AllocationPolicy::WaterFilling, AllocationPolicy::Learned] {
        let sequential = with_threads(1, || multi_channel_outcome(policy));
        for threads in [2usize, 4] {
            let parallel = with_threads(threads, || multi_channel_outcome(policy));
            assert_eq!(parallel.epochs, sequential.epochs, "{policy:?}");
            assert_eq!(
                parallel.viewer_fairness.to_bits(),
                sequential.viewer_fairness.to_bits(),
                "{policy:?} viewer_fairness at {threads} threads"
            );
            let pairs: [(&str, &[f64], &[f64]); 5] = [
                ("welfare", parallel.welfare.values(), sequential.welfare.values()),
                ("server_load", parallel.server_load.values(), sequential.server_load.values()),
                (
                    "worst_empirical_regret",
                    parallel.worst_empirical_regret.values(),
                    sequential.worst_empirical_regret.values(),
                ),
                (
                    "mean_channel_rates",
                    &parallel.mean_channel_rates,
                    &sequential.mean_channel_rates,
                ),
                (
                    "channel_continuity",
                    &parallel.channel_continuity,
                    &sequential.channel_continuity,
                ),
            ];
            for (label, par_series, seq_series) in pairs {
                assert_bit_identical(
                    &format!("{policy:?}/{label}"),
                    threads,
                    par_series,
                    seq_series,
                );
            }
        }
    }
}
