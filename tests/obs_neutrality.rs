//! The observability layer's cardinal contract: **tracing is
//! bit-neutral**. Enabling `rths_obs` must not change a single bit of
//! any trajectory on any backend at any thread count — timing is read,
//! never fed back. Each test runs the same seeded workload twice inside
//! one `RTHS_THREADS` guard (untraced, then traced) and compares the
//! full metric series by `f64::to_bits`, the same zero-tolerance
//! standard `sim_net_equivalence` holds the three engines to.
//!
//! The traced run must also *record something* — a neutrality test
//! against a silently disabled tracer would be vacuous — so every test
//! asserts the drained [`rths_obs::TraceReport`] is non-empty.

use rths_net::{Backend, NetConfig};
use rths_obs as obs;
use rths_sim::{
    AllocationPolicy, MultiChannelConfig, MultiChannelSystem, Scenario, ScenarioSpec, System,
};

/// Pins `RTHS_THREADS` for the duration of `f` via the workspace's one
/// sanctioned env-mutation helper ([`rths_par::env::with_var`]). Its
/// process-wide guard doubles as the serialization point for the global
/// obs enable flag: every test in this binary runs its untraced *and*
/// traced passes inside one `with_threads` window, so an interleaved
/// traced test can never contaminate another test's "untraced" run.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    rths_par::env::with_var("RTHS_THREADS", Some(&n.to_string()), f)
}

/// Runs `f` with tracing globally enabled, drains the registry, and
/// asserts the run actually recorded spans or counters.
fn traced<R>(tag: &str, f: impl FnOnce() -> R) -> R {
    let _on = obs::scoped_enable(true);
    let result = f();
    let report = obs::take_report();
    assert!(
        !report.is_empty(),
        "{tag}: traced run recorded nothing — neutrality test is vacuous"
    );
    assert!(!report.spans.is_empty(), "{tag}: traced run recorded no spans");
    result
}

/// Bit-pattern view of a float series: equality here is exact.
fn bits(series: &[f64]) -> Vec<u64> {
    series.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn sim_system_is_bit_neutral_under_tracing() {
    for threads in [1usize, 2] {
        with_threads(threads, || {
            let run = || System::new(Scenario::paper_small().seed(41).build()).run(60);
            let plain = run();
            let shadow = traced(&format!("sim RTHS_THREADS={threads}"), run);
            assert_eq!(plain.epochs, shadow.epochs);
            assert_eq!(
                bits(plain.metrics.welfare.values()),
                bits(shadow.metrics.welfare.values()),
                "welfare diverged under tracing at RTHS_THREADS={threads}"
            );
            assert_eq!(
                bits(plain.metrics.server_load.values()),
                bits(shadow.metrics.server_load.values()),
                "server load diverged under tracing at RTHS_THREADS={threads}"
            );
            assert_eq!(
                bits(plain.metrics.worst_empirical_regret.values()),
                bits(shadow.metrics.worst_empirical_regret.values()),
                "regret diverged under tracing at RTHS_THREADS={threads}"
            );
            assert_eq!(
                bits(plain.metrics.jain.values()),
                bits(shadow.metrics.jain.values()),
                "Jain fairness diverged under tracing at RTHS_THREADS={threads}"
            );
        });
    }
}

#[test]
fn multichannel_system_is_bit_neutral_under_tracing() {
    for threads in [1usize, 2] {
        with_threads(threads, || {
            let run = || {
                let config = MultiChannelConfig::standard(
                    4,
                    400.0,
                    8,
                    2,
                    120,
                    1.2,
                    AllocationPolicy::WaterFilling,
                    19,
                );
                MultiChannelSystem::new(config).run(25)
            };
            let plain = run();
            let shadow = traced(&format!("multichannel RTHS_THREADS={threads}"), run);
            assert_eq!(
                bits(plain.welfare.values()),
                bits(shadow.welfare.values()),
                "multi-channel welfare diverged under tracing at RTHS_THREADS={threads}"
            );
            assert_eq!(
                bits(plain.server_load.values()),
                bits(shadow.server_load.values()),
                "multi-channel server load diverged under tracing at RTHS_THREADS={threads}"
            );
        });
    }
}

#[test]
fn threaded_backend_is_bit_neutral_under_tracing() {
    for threads in [1usize, 2] {
        with_threads(threads, || {
            let sim = Scenario::paper_small().seed(43).build();
            let plain = rths_net::run(NetConfig::from_sim(sim.clone()), 40);
            // The `with_trace` config knob (rather than ambient enable)
            // exercises the runtime's own scoped guard.
            let shadow = traced(&format!("threaded RTHS_THREADS={threads}"), || {
                rths_net::run(NetConfig::from_sim(sim.clone()).with_trace(true), 40)
            });
            assert_eq!(
                bits(plain.metrics.welfare.values()),
                bits(shadow.metrics.welfare.values()),
                "threaded welfare diverged under tracing at RTHS_THREADS={threads}"
            );
            assert_eq!(
                plain.messages, shadow.messages,
                "threaded message totals diverged under tracing at RTHS_THREADS={threads}"
            );
        });
    }
}

#[test]
fn reactor_backend_is_bit_neutral_under_tracing() {
    for threads in [1usize, 2] {
        with_threads(threads, || {
            let sim = Scenario::paper_small().seed(44).build();
            let config = || NetConfig::from_sim(sim.clone()).with_backend(Backend::Reactor);
            let plain = rths_net::run(config(), 40);
            let shadow = traced(&format!("reactor RTHS_THREADS={threads}"), || {
                rths_net::run(config().with_trace(true), 40)
            });
            assert_eq!(
                bits(plain.metrics.welfare.values()),
                bits(shadow.metrics.welfare.values()),
                "reactor welfare diverged under tracing at RTHS_THREADS={threads}"
            );
            assert_eq!(
                plain.messages, shadow.messages,
                "reactor message totals diverged under tracing at RTHS_THREADS={threads}"
            );
        });
    }
}

#[test]
fn scenario_spec_run_is_bit_neutral_under_tracing() {
    // The zoo path covers churn, impairments, and the spec-level trace
    // plumbing in one go.
    with_threads(2, || {
        let spec = ScenarioSpec::load("scenarios/flash_crowd_spike.toml")
            .expect("zoo spec parses")
            .with_epoch_cap(40);
        let plain = spec.run();
        let shadow = traced("scenario spec", || spec.run());
        assert_eq!(
            bits(&plain.welfare),
            bits(&shadow.welfare),
            "scenario welfare diverged under tracing"
        );
        assert_eq!(
            bits(&plain.worst_empirical_regret),
            bits(&shadow.worst_empirical_regret),
            "scenario regret diverged under tracing"
        );
    });
}
