//! Ablation abl-track (DESIGN.md): regret tracking vs regret matching
//! under a mid-run helper-capacity collapse.

use rths_sim::{Algorithm, LearnerSpec, Scenario, System};

fn degraded_load_at(out: &rths_sim::Outcome, lo: usize, hi: usize) -> f64 {
    [0usize, 2, 4]
        .iter()
        .map(|&j| rths_math::stats::mean(&out.metrics.helper_loads[j].values()[lo..hi]))
        .sum()
}

/// 300 epochs after the collapse, tracking has evacuated the degraded
/// helpers far further than matching — the quantitative version of the
/// paper's "adaptive to supply and demand pattern" claim.
#[test]
fn tracking_evacuates_faster_than_matching() {
    let shift = 3000usize;
    let run = |alg: Algorithm| {
        let config = Scenario::regime_shift(shift as u64)
            .learner(LearnerSpec { algorithm: alg, ..LearnerSpec::default() })
            .seed(42)
            .build();
        System::new(config).run(6000)
    };
    let tracking = run(Algorithm::Rths);
    let matching = run(Algorithm::RegretMatching);

    let pre = degraded_load_at(&tracking, shift - 300, shift);
    let t300 = degraded_load_at(&tracking, shift + 200, shift + 400);
    let m300 = degraded_load_at(&matching, shift + 200, shift + 400);
    let t_end = degraded_load_at(&tracking, 5700, 6000);

    // Sanity: before the shift the degraded helpers were popular.
    assert!(pre > 30.0, "pre-shift load {pre:.1} unexpectedly low");
    // Tracking is close to its steady state within 300 epochs…
    assert!(
        t300 < t_end + 3.0,
        "tracking not converged at +300: {t300:.1} vs steady {t_end:.1}"
    );
    // …and has evacuated at least twice as many peers as matching.
    let evac_t = pre - t300;
    let evac_m = pre - m300;
    assert!(
        evac_t > 2.0 * evac_m,
        "tracking evacuated {evac_t:.1}, matching {evac_m:.1} — gap too small"
    );
}

/// Both algorithms eventually shed load (matching is slow, not dead).
#[test]
fn matching_eventually_follows() {
    let shift = 2000usize;
    let config = Scenario::regime_shift(shift as u64)
        .learner(LearnerSpec { algorithm: Algorithm::RegretMatching, ..LearnerSpec::default() })
        .seed(7)
        .build();
    let out = System::new(config).run(8000);
    let pre = degraded_load_at(&out, shift - 300, shift);
    let late = degraded_load_at(&out, 7700, 8000);
    assert!(late < pre - 5.0, "matching never adapted: {pre:.1} -> {late:.1}");
}
