//! Golden regression tests: tiny runs with pinned exact values.
//!
//! Every stochastic component is seeded, so identical binaries must
//! produce identical trajectories. These tests pin a handful of exact
//! outputs; any unintended change to RNG stream layout, learner update
//! order, or rate arithmetic fails them loudly. If a change is
//! *intentional* (e.g. a new learner default), update the constants and
//! say so in the commit message.

use rths_sim::{BandwidthSpec, Scenario, SimConfig, System};

#[test]
fn golden_small_run_welfare_prefix() {
    let mut system = System::new(
        SimConfig::builder(4, vec![BandwidthSpec::Constant(800.0); 2]).seed(1).build(),
    );
    let out = system.run(8);
    // Loads are integers and capacities constant, so welfare per epoch is
    // one of {800, 1600} exactly, depending on coverage.
    let welfare = out.metrics.welfare.values();
    for &w in welfare {
        assert!(
            (w - 800.0).abs() < 1e-12 || (w - 1600.0).abs() < 1e-12,
            "unexpected welfare value {w}"
        );
    }
    // Pin the exact coverage pattern for seed 1.
    let covered: Vec<bool> = welfare.iter().map(|&w| w > 1000.0).collect();
    assert_eq!(covered, vec![true; 8], "coverage pattern drifted: {covered:?}");
}

#[test]
fn golden_paper_small_signature() {
    let mut system = System::new(Scenario::paper_small().seed(42).build());
    let out = system.run(50);
    // Signature: the sum of the welfare series, a single number that
    // fingerprints the entire coupled trajectory (helpers' chains, peer
    // choices, rate arithmetic).
    let signature: f64 = out.metrics.welfare.values().iter().sum();
    // Pinned against the vendored xoshiro256++ `StdRng` (see vendor/rand);
    // re-pin if the RNG stream layout ever changes intentionally.
    let expected = 154_200.0;
    assert!(
        (signature - expected).abs() < 1e-6,
        "trajectory fingerprint drifted: {signature:.9} vs {expected:.9}"
    );
}

#[test]
fn golden_fingerprint_is_stable_across_runs() {
    let run = || {
        let mut system = System::new(Scenario::paper_small().seed(42).build());
        let out = system.run(50);
        out.metrics.welfare.values().iter().sum::<f64>()
    };
    assert_eq!(run(), run());
}
