//! Robustness under churn, flash crowds and helper failures.

use rths_sim::churn::FailureSchedule;
use rths_sim::{BandwidthSpec, LearnerSpec, Scenario, SimConfig, System};
use rths_stoch::process::FlashCrowd;

/// Under stationary churn the system keeps serving: population hovers at
/// the equilibrium and fairness stays high.
#[test]
fn churn_keeps_system_healthy() {
    let mut system = System::new(Scenario::churn().seed(21).build());
    let out = system.run(3000);
    let pops = out.metrics.population.values();
    let mean_pop = rths_math::stats::mean(&pops[1000..]);
    assert!(
        (mean_pop - 100.0).abs() < 15.0,
        "population {mean_pop:.0} far from equilibrium 100"
    );
    // Peers alive at the end still receive sensible service.
    let jain = out.metrics.long_run_fairness();
    assert!(jain > 0.8, "fairness under churn too low: {jain:.3}");
    // Loads always match the live population.
    for e in 0..out.metrics.epochs() {
        let l: f64 = out.metrics.helper_loads.iter().map(|s| s.values()[e]).sum();
        assert_eq!(l, out.metrics.population.values()[e]);
    }
}

/// A flash crowd triples the audience; total delivered rate scales up
/// (helpers absorb the surge) and recovers when the crowd leaves.
#[test]
fn flash_crowd_is_absorbed() {
    let config = SimConfig::builder(40, vec![BandwidthSpec::Paper { stay: 0.98 }; 8])
        .churn(rths_stoch::process::ChurnProcess::new(0.8, 0.02))
        .demand(300.0)
        .seed(22)
        .build();
    let mut system = System::new(config);
    let crowd = FlashCrowd::new(800, 1200, 10.0);
    let out = rths_sim::workload::run_flash_crowd(&mut system, 2400, crowd);
    let pops = out.metrics.population.values();
    let before = rths_math::stats::mean(&pops[600..800]);
    let during = rths_math::stats::mean(&pops[1000..1200]);
    let after = rths_math::stats::mean(&pops[2200..]);
    assert!(during > before * 1.5, "surge invisible: {before:.0} -> {during:.0}");
    assert!(after < during * 0.8, "population did not drain: {during:.0} -> {after:.0}");
    // Server picks up the surge deficit.
    let load_before = rths_math::stats::mean(&out.metrics.server_load.values()[600..800]);
    let load_during = rths_math::stats::mean(&out.metrics.server_load.values()[1000..1200]);
    assert!(load_during > load_before, "server load did not rise during crowd");
}

/// Helper outage and recovery: peers evacuate a dead helper (with the
/// conditional-regret extension) and re-adopt it after recovery.
#[test]
fn outage_and_recovery_cycle() {
    let config = SimConfig::builder(16, vec![BandwidthSpec::Constant(800.0); 4])
        .learner(LearnerSpec { conditional: true, ..LearnerSpec::default() })
        .seed(23)
        .build();
    let mut system = System::new(config);
    let schedule = FailureSchedule::new().fail_at(1500, 2).recover_at(3000, 2);
    let out = schedule.run(&mut system, 4800);

    let loads2 = out.metrics.helper_loads[2].values();
    let healthy = rths_math::stats::mean(&loads2[1200..1500]);
    let during = rths_math::stats::mean(&loads2[2600..3000]);
    let recovered = rths_math::stats::mean(&loads2[4400..]);
    assert!(healthy > 2.5, "helper 2 unused while healthy: {healthy:.2}");
    assert!(during < healthy * 0.55, "no evacuation: {healthy:.2} -> {during:.2}");
    assert!(
        recovered > during + 0.7,
        "no re-adoption after recovery: {during:.2} -> {recovered:.2}"
    );
}

/// The churn-time identity contract: a departure must not perturb any
/// surviving peer's trajectory.
///
/// The configuration makes every peer's dynamics independent of the rest
/// of the swarm — constant helper capacities with a demand cap that is
/// always met (`capacity / population ≥ demand`), so each peer's observed
/// rate is `demand` regardless of the load profile. A mid-run departure
/// then changes *nothing* for the survivors: their choice sequences,
/// learner strategies and accounting must be bit-identical to the
/// run where the departed peer never left. Under the historical
/// `swap_remove` churn path a store keyed by slot index would have
/// re-aliased the moved peer onto the departed peer's RNG stream, learner
/// row and rate column; the order-preserving stable-id removal makes this
/// impossible, and this test pins it.
#[test]
fn departure_does_not_perturb_survivors() {
    let build = || {
        // 8 peers × demand 100 = 800 ≤ every helper alone (1600), so the
        // per-peer rate is always exactly the demand.
        let config = SimConfig::builder(8, vec![BandwidthSpec::Constant(1600.0); 2])
            .demand(100.0)
            .seed(31)
            .build();
        System::new(config)
    };
    let snapshot = |sys: &System| -> Vec<(u64, Vec<u64>, u64, f64)> {
        let peers = sys.peers();
        (0..peers.len())
            .map(|slot| {
                (
                    peers.id(slot),
                    peers.learner(slot).probabilities().iter().map(|p| p.to_bits()).collect(),
                    peers.switches(slot),
                    peers.mean_rate(slot),
                )
            })
            .collect()
    };

    let mut baseline = build();
    let _ = baseline.run(400);
    let base = snapshot(&baseline);

    let mut churned = build();
    let _ = churned.run(200);
    assert!(churned.depart_peer(3), "peer 3 should be online");
    let _ = churned.run(200);
    let after = snapshot(&churned);

    assert_eq!(after.len(), base.len() - 1);
    for row in &after {
        assert_ne!(row.0, 3, "departed peer still present");
        let reference = base
            .iter()
            .find(|b| b.0 == row.0)
            .unwrap_or_else(|| panic!("peer {} lost its identity", row.0));
        assert_eq!(
            row.1, reference.1,
            "peer {}'s learner trajectory was perturbed by the departure",
            row.0
        );
        assert_eq!(row.2, reference.2, "peer {}'s switch count drifted", row.0);
        assert_eq!(
            row.3.to_bits(),
            reference.3.to_bits(),
            "peer {}'s mean rate drifted",
            row.0
        );
    }
}

/// Determinism survives churn and failures: identical configs and
/// schedules give identical outcomes.
#[test]
fn orchestrated_runs_are_deterministic() {
    let build = || {
        let config = Scenario::churn().seed(24).build();
        let mut system = System::new(config);
        let schedule = FailureSchedule::new().fail_at(200, 0).recover_at(400, 0);
        schedule.run(&mut system, 600)
    };
    let a = build();
    let b = build();
    assert_eq!(a.metrics.welfare.values(), b.metrics.welfare.values());
    assert_eq!(a.final_population, b.final_population);
}
