//! Tests of the multi-channel future-work extension.

use rths_sim::workload::{run_with_shifts, PopularityShift};
use rths_sim::{AllocationPolicy, MultiChannelConfig, MultiChannelSystem};

/// A *provisioned* instance: 24 viewers × 300 kbps = 7200 kbps demand
/// against 12 helpers × ~800 kbps ≈ 9600 kbps supply, so full continuity
/// is achievable and continuity assertions are meaningful.
fn standard(alloc: AllocationPolicy, seed: u64) -> MultiChannelSystem {
    MultiChannelSystem::new(MultiChannelConfig::standard(4, 300.0, 12, 2, 24, 1.0, alloc, seed))
}

/// Allocation-policy ordering: water-filling ≥ load-proportional ≥
/// even-split in delivered welfare (demand-aware beats demand-blind).
#[test]
fn allocation_policy_ordering() {
    let mut results = Vec::new();
    for policy in [
        AllocationPolicy::EvenSplit,
        AllocationPolicy::LoadProportional,
        AllocationPolicy::WaterFilling,
    ] {
        let mut sys = MultiChannelSystem::new(MultiChannelConfig::standard(
            4, 400.0, 8, 2, 80, 1.5, policy, 31,
        ));
        let out = sys.run(2000);
        results.push((policy, out.welfare.tail_mean(400)));
    }
    let even = results[0].1;
    let load = results[1].1;
    let wf = results[2].1;
    assert!(load >= even * 0.98, "load-prop {load:.0} worse than even {even:.0}");
    assert!(wf >= load * 0.99, "water-filling {wf:.0} worse than load-prop {load:.0}");
    assert!(wf > even * 1.02, "water-filling shows no gain over even split");
}

/// Viewer regret decays in the multi-channel system too — RTHS composes
/// with per-channel action sets.
#[test]
fn multichannel_regret_decays() {
    let mut sys = standard(AllocationPolicy::WaterFilling, 32);
    let out = sys.run(2500);
    let series = out.worst_empirical_regret;
    let early = rths_math::stats::mean(&series.values()[20..120]);
    let late = series.tail_mean(300);
    assert!(late < early * 0.5, "no decay: early {early:.1}, late {late:.1}");
}

/// Popularity shift: the system tracks the audience as it migrates
/// between channels, keeping continuity high on the destination channel.
#[test]
fn popularity_shift_is_tracked() {
    let mut sys = standard(AllocationPolicy::WaterFilling, 33);
    let pre = sys.run(1200);
    let pre_ch3 = pre.mean_channel_rates[3];
    let shifts = [
        PopularityShift { epoch: 1200, from: 0, to: 3, count: 6 },
        PopularityShift { epoch: 1200, from: 1, to: 3, count: 3 },
    ];
    let out = run_with_shifts(&mut sys, 2400, &shifts);
    assert_eq!(out.epochs, 3600);
    // mean_channel_rates are cumulative time averages; recover the
    // post-shift average from the two snapshots.
    let post_ch3 = (out.mean_channel_rates[3] * 3600.0 - pre_ch3 * 1200.0) / 2400.0;
    // The audience of channel 3 grew from 2 to 11 viewers; its delivered
    // aggregate rate must follow (allocation + helper selection adapt).
    assert!(
        post_ch3 > 2.5 * pre_ch3,
        "delivery did not follow the audience: pre {pre_ch3:.0} -> post {post_ch3:.0}"
    );
    // The destination channel is genuinely served, not trickle-fed.
    assert!(
        out.channel_continuity[3] > 0.25,
        "destination channel starved: continuity {:.2}",
        out.channel_continuity[3]
    );
    // Fairness across all viewers remains reasonable.
    assert!(out.viewer_fairness > 0.6, "fairness {:.2}", out.viewer_fairness);
}

/// Zipf populations put the most viewers on channel 0 and the system
/// still serves tail channels (no starvation of unpopular content).
#[test]
fn unpopular_channels_not_starved() {
    let mut sys = standard(AllocationPolicy::WaterFilling, 34);
    let out = sys.run(2000);
    for (c, &cont) in out.channel_continuity.iter().enumerate() {
        assert!(cont > 0.3, "channel {c} starved: continuity {cont:.2}");
    }
    // The most popular channel receives the largest aggregate rate.
    let r = &out.mean_channel_rates;
    assert!(r[0] >= r[3], "popular channel outdelivered by tail channel: {r:?}");
}
